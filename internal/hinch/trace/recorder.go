// Package trace is the reference implementation of the hinch.Tracer
// flight recorder: a set of per-shard ring buffers with no locks or
// atomics on the record path, a Perfetto-loadable Chrome trace-event
// exporter, and invariant checks used by the tests.
//
// The recorder follows the shard write discipline documented on
// hinch.Tracer: shard 0 is serialised by the engine (its lock, or the
// single sim goroutine) and shard w+1 is private to worker w, so each
// ring can be a plain slice. Rings have flight-recorder semantics —
// when one fills up, the oldest events are overwritten and counted as
// dropped, so tracing a long run costs bounded memory and the tail of
// the run (usually the part being debugged) survives.
package trace

import (
	"fmt"

	"xspcl/internal/hinch"
)

// DefaultShardEvents is the default ring capacity per shard (32768
// events × 32 bytes = 1 MiB per shard).
const DefaultShardEvents = 1 << 15

// shard is one ring buffer. The struct is padded to a cache line so
// concurrently-written neighbouring shards do not false-share.
type shard struct {
	buf []hinch.TraceEvent
	n   uint64 // events ever written; buf[(n-1)&mask] is the newest
	_   [32]byte
}

// Recorder is a hinch.Tracer that records events into per-shard rings.
// Create one with New, pass it as Config.Tracer, and read it back
// (Events, WritePerfetto, Validate) after App.Run returns.
//
// A Recorder may be reused across runs: Begin resets the rings in
// place when the shard count is unchanged, so benchmarks do not
// re-allocate the buffers every iteration.
type Recorder struct {
	meta   hinch.TraceMeta
	shards []shard
	size   int
	mask   uint64
	began  bool
}

// New returns a Recorder holding perShard events per shard (rounded up
// to a power of two; <=0 selects DefaultShardEvents).
func New(perShard int) *Recorder {
	if perShard <= 0 {
		perShard = DefaultShardEvents
	}
	size := 1
	for size < perShard {
		size <<= 1
	}
	return &Recorder{size: size, mask: uint64(size - 1)}
}

// Begin implements hinch.Tracer. It sizes the shard array to
// meta.Cores+1 rings, reusing existing buffers when possible.
func (r *Recorder) Begin(meta hinch.TraceMeta) {
	r.meta = meta
	r.began = true
	n := meta.Cores + 1
	if len(r.shards) == n {
		for i := range r.shards {
			r.shards[i].n = 0
		}
		return
	}
	r.shards = make([]shard, n)
	for i := range r.shards {
		r.shards[i].buf = make([]hinch.TraceEvent, r.size)
	}
}

// Emit implements hinch.Tracer. It must only be called under the shard
// write discipline (same-shard calls totally ordered); it performs one
// slice store and one increment — no locks, no allocation.
func (r *Recorder) Emit(shardIdx int, ev hinch.TraceEvent) {
	s := &r.shards[shardIdx]
	s.buf[s.n&r.mask] = ev
	s.n++
}

// End implements hinch.Tracer. The engine guarantees all Emit calls
// happen-before End (worker joins precede it), so no synchronisation
// is needed here.
func (r *Recorder) End() {}

// Meta returns the metadata of the recorded run.
func (r *Recorder) Meta() hinch.TraceMeta { return r.meta }

// Shards returns the number of rings (engine + one per worker).
func (r *Recorder) Shards() int { return len(r.shards) }

// Events returns shard's recorded events oldest-first. When the ring
// overflowed, only the newest capacity-many events remain.
func (r *Recorder) Events(shardIdx int) []hinch.TraceEvent {
	s := &r.shards[shardIdx]
	if s.n <= uint64(r.size) {
		out := make([]hinch.TraceEvent, s.n)
		copy(out, s.buf[:s.n])
		return out
	}
	head := s.n & r.mask // oldest surviving event
	out := make([]hinch.TraceEvent, 0, r.size)
	out = append(out, s.buf[head:]...)
	out = append(out, s.buf[:head]...)
	return out
}

// Total returns how many events survive across all shards.
func (r *Recorder) Total() int {
	t := 0
	for i := range r.shards {
		n := r.shards[i].n
		if n > uint64(r.size) {
			n = uint64(r.size)
		}
		t += int(n)
	}
	return t
}

// Dropped returns how many events were overwritten by ring overflow.
func (r *Recorder) Dropped() int64 {
	var d int64
	for i := range r.shards {
		if n := r.shards[i].n; n > uint64(r.size) {
			d += int64(n - uint64(r.size))
		}
	}
	return d
}

// Validate checks the recorded trace against the run's Report:
//   - every span has a worker inside the run's core count,
//     a non-negative duration and does not overlap the previous span
//     on the same worker (spans tile each worker's timeline);
//   - per-shard timestamps of spans never decrease;
//   - when no events were dropped, the traced span count equals
//     Report.Jobs (skips are no-ops and are excluded from both).
func Validate(r *Recorder, rep *hinch.Report) error {
	if !r.began {
		return fmt.Errorf("trace: recorder was never attached to a run")
	}
	meta := r.meta
	if len(r.shards) != meta.Cores+1 {
		return fmt.Errorf("trace: %d shards for %d cores", len(r.shards), meta.Cores)
	}
	spans := int64(0)
	lastEnd := make(map[int32]int64, meta.Cores)
	for si := 0; si < len(r.shards); si++ {
		for _, ev := range r.Events(si) {
			if ev.Kind != hinch.TraceJobSpan {
				continue
			}
			spans++
			if ev.Worker < 0 || int(ev.Worker) >= meta.Cores {
				return fmt.Errorf("trace: span on worker %d of %d", ev.Worker, meta.Cores)
			}
			if ev.Arg < 0 {
				return fmt.Errorf("trace: span with negative duration %d", ev.Arg)
			}
			if ev.TS < lastEnd[ev.Worker] {
				return fmt.Errorf("trace: overlapping spans on worker %d: start %d < previous end %d",
					ev.Worker, ev.TS, lastEnd[ev.Worker])
			}
			lastEnd[ev.Worker] = ev.TS + ev.Arg
		}
	}
	if r.Dropped() == 0 && spans != rep.Jobs {
		return fmt.Errorf("trace: %d job spans recorded, report counts %d jobs", spans, rep.Jobs)
	}
	return nil
}
