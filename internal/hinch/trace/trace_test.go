package trace_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"xspcl/internal/apps"
	"xspcl/internal/hinch"
	"xspcl/internal/hinch/trace"
)

// blurVariant is a reduced-scale reconfigurable Blur-35: it exercises
// every trace event class — components, manager entry/exit, option
// skips, event pushes/drains and full reconfiguration cycles.
func blurVariant() *apps.Variant {
	cfg := apps.DefaultBlur(3)
	cfg.Frames = 24
	cfg.Reconfig = true
	cfg.Every = 8
	return apps.NewBlurVariant("Blur-35", cfg)
}

func runTraced(t *testing.T, cfg hinch.Config, rec *trace.Recorder) *hinch.Report {
	t.Helper()
	cfg.Tracer = rec
	rep, _, err := blurVariant().Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// kindCount tallies one event kind across all shards.
func kindCount(rec *trace.Recorder, kind hinch.TraceKind) int {
	n := 0
	for si := 0; si < rec.Shards(); si++ {
		for _, ev := range rec.Events(si) {
			if ev.Kind == kind {
				n++
			}
		}
	}
	return n
}

// TestTraceInvariantsSim checks the recorded trace against the report
// on the sim backend: spans tile the cores without overlap, the span
// count matches Report.Jobs, and every lifecycle class was recorded.
func TestTraceInvariantsSim(t *testing.T) {
	rec := trace.New(1 << 16)
	rep := runTraced(t, apps.SimConfig(4, apps.RunOptions{Workless: true}), rec)
	if err := trace.Validate(rec, rep); err != nil {
		t.Fatal(err)
	}
	if d := rec.Dropped(); d != 0 {
		t.Fatalf("dropped %d events with an oversized ring", d)
	}
	if got := int64(kindCount(rec, hinch.TraceJobSpan)); got != rep.Jobs {
		t.Errorf("job spans = %d, report jobs = %d", got, rep.Jobs)
	}
	// Blur-35 always has one of the two kernel options disabled, so
	// skips must appear; reconfigurations must record all three phases.
	if kindCount(rec, hinch.TraceJobSkip) == 0 {
		t.Error("no skip events for a variant with disabled options")
	}
	for _, k := range []hinch.TraceKind{
		hinch.TraceIterLaunch, hinch.TraceIterRetire,
		hinch.TraceStreamAcquire, hinch.TraceStreamRelease,
		hinch.TraceEventPush, hinch.TraceEventDrain,
		hinch.TraceReconfigHalt, hinch.TraceReconfigApply, hinch.TraceReconfigResume,
	} {
		if kindCount(rec, k) == 0 {
			t.Errorf("no %v events recorded", k)
		}
	}
	if got, want := kindCount(rec, hinch.TraceIterRetire), rep.Iterations; got != want {
		t.Errorf("retire events = %d, iterations = %d", got, want)
	}
	if got, want := kindCount(rec, hinch.TraceReconfigApply), rep.Reconfigs; got != want {
		t.Errorf("reconfig-apply events = %d, reconfigs = %d", got, want)
	}
}

// TestTraceInvariantsReal checks the same invariants on the real
// backend, where spans carry wall timestamps from per-worker shards.
func TestTraceInvariantsReal(t *testing.T) {
	rec := trace.New(1 << 16)
	rep := runTraced(t, hinch.Config{
		Backend: hinch.BackendReal, Cores: 4, PipelineDepth: 5, Workless: true,
	}, rec)
	if err := trace.Validate(rec, rep); err != nil {
		t.Fatal(err)
	}
	if got := int64(kindCount(rec, hinch.TraceJobSpan)); got != rep.Jobs {
		t.Errorf("job spans = %d, report jobs = %d", got, rep.Jobs)
	}
	// The folded scheduler counters must agree with the trace.
	if got, want := int64(kindCount(rec, hinch.TraceStealHit)), rep.Sched.Steals; got != want {
		t.Errorf("steal events = %d, report steals = %d", got, want)
	}
	if got, want := int64(kindCount(rec, hinch.TraceGlobalPop)), rep.Sched.GlobalPops; got != want {
		t.Errorf("global-pop events = %d, report global pops = %d", got, want)
	}
	if got, want := int64(kindCount(rec, hinch.TracePark)), rep.Sched.Parks; got != want {
		t.Errorf("park events = %d, report parks = %d", got, want)
	}
}

// TestSimTraceDeterministic runs the same program twice on the sim
// backend and requires byte-identical Perfetto exports: virtual-cycle
// timestamps and the recorder's total event order are deterministic.
func TestSimTraceDeterministic(t *testing.T) {
	export := func() []byte {
		rec := trace.New(1 << 16)
		runTraced(t, apps.SimConfig(4, apps.RunOptions{Workless: true}), rec)
		var buf bytes.Buffer
		if err := rec.WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatalf("sim traces differ across identical runs (%d vs %d bytes)", len(a), len(b))
	}
}

// TestRingOverflow checks flight-recorder semantics: a tiny ring drops
// the oldest events but the export stays valid and Validate still
// accepts the trace (the count cross-check only applies to complete
// recordings).
func TestRingOverflow(t *testing.T) {
	rec := trace.New(64)
	rep := runTraced(t, apps.SimConfig(2, apps.RunOptions{Workless: true}), rec)
	if rec.Dropped() == 0 {
		t.Fatal("expected drops with a 64-event ring")
	}
	if err := trace.Validate(rec, rep); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if d, _ := out.OtherData["events_dropped"].(float64); int64(d) != rec.Dropped() {
		t.Errorf("otherData.events_dropped = %v, recorder dropped = %d", out.OtherData["events_dropped"], rec.Dropped())
	}
}

// TestRecorderReuse checks Begin resets the rings in place so one
// recorder can serve many runs (the overhead benchmark relies on it).
func TestRecorderReuse(t *testing.T) {
	rec := trace.New(1 << 16)
	rep1 := runTraced(t, apps.SimConfig(4, apps.RunOptions{Workless: true}), rec)
	first := rec.Total()
	rep2 := runTraced(t, apps.SimConfig(4, apps.RunOptions{Workless: true}), rec)
	if rec.Total() != first {
		t.Errorf("reused recorder holds %d events, first run recorded %d", rec.Total(), first)
	}
	if err := trace.Validate(rec, rep2); err != nil {
		t.Fatal(err)
	}
	if rep1.Jobs != rep2.Jobs {
		t.Errorf("identical runs executed %d vs %d jobs", rep1.Jobs, rep2.Jobs)
	}
}

// TestPerfettoExportShape decodes the export and spot-checks the
// trace-event schema: metadata names every track, job slices land on
// worker tracks, and counters carry their value args.
func TestPerfettoExportShape(t *testing.T) {
	rec := trace.New(1 << 16)
	runTraced(t, hinch.Config{
		Backend: hinch.BackendReal, Cores: 3, PipelineDepth: 5, Workless: true,
	}, rec)
	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	tracks := map[int]bool{}
	slices, counters := 0, 0
	for _, ev := range out.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "thread_name" {
				tracks[ev.TID] = true
			}
		case "X":
			if ev.Dur == nil || *ev.Dur < 0 {
				t.Fatalf("slice %q without valid dur", ev.Name)
			}
			if ev.TID < 0 || ev.TID > 3 {
				t.Fatalf("slice %q on unknown track %d", ev.Name, ev.TID)
			}
			slices++
		case "C":
			if len(ev.Args) == 0 {
				t.Fatalf("counter %q without args", ev.Name)
			}
			counters++
		}
	}
	for tid := 0; tid <= 3; tid++ { // 3 workers + runtime track
		if !tracks[tid] {
			t.Errorf("no thread_name metadata for track %d", tid)
		}
	}
	if slices == 0 || counters == 0 {
		t.Fatalf("export has %d slices and %d counters", slices, counters)
	}
	if clock := out.OtherData["clock"]; clock != "wall-ns" {
		t.Errorf("otherData.clock = %v on the real backend", clock)
	}
}
