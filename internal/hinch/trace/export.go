package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"xspcl/internal/hinch"
)

// chromeEvent is one entry of the Chrome trace-event format
// (Perfetto's legacy JSON importer). Field subset used here:
// ph "M" metadata, "X" complete slice, "i" instant, "C" counter,
// "s"/"f" flow start/finish.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents []chromeEvent  `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

// WriteFile exports the recorded trace to path as Chrome trace-event
// JSON; open it in Perfetto (ui.perfetto.dev) or chrome://tracing.
func (r *Recorder) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WritePerfetto(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exportRec is one merged-stream entry: an event plus its merge key
// (timestamp, shard, emission order), so equal-timestamp events from
// different shards still serialise deterministically.
type exportRec struct {
	ev    hinch.TraceEvent
	shard int
	seq   int
}

// collect merges all shards into one totally-ordered stream. When last
// is positive only the newest last events survive the merge (the tail
// of the flight recorder).
func (r *Recorder) collect(last int) []exportRec {
	var all []exportRec
	for si := 0; si < len(r.shards); si++ {
		for i, ev := range r.Events(si) {
			all = append(all, exportRec{ev: ev, shard: si, seq: i})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.ev.TS != b.ev.TS {
			return a.ev.TS < b.ev.TS
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.seq < b.seq
	})
	if last > 0 && len(all) > last {
		all = all[len(all)-last:]
	}
	return all
}

// Tail returns the newest last events across all shards in the merged
// total order (all of them when last <= 0). Reading a live Recorder
// mid-run is best-effort: workers keep writing while the rings are
// copied, so an event at a ring's write edge may be torn — acceptable
// for a black-box dump, never use it for invariant checks.
func (r *Recorder) Tail(last int) []hinch.TraceEvent {
	recs := r.collect(last)
	out := make([]hinch.TraceEvent, len(recs))
	for i, rc := range recs {
		out[i] = rc.ev
	}
	return out
}

// WritePerfetto writes the trace as Chrome trace-event JSON. One track
// (tid) per core/worker plus a "runtime" track for engine-level events;
// job executions are complete slices, stream occupancy and event-queue
// depth are counter tracks, and each reconfiguration renders as a
// halt/drain slice pair on the runtime track joined to the resume by a
// flow arrow. Timestamps are microseconds: one virtual cycle maps to
// 1 µs on the sim backend and nanoseconds divide by 1000 on the real
// one. The export is deterministic — events are merged in a total
// order and all JSON maps have sorted keys — so sim-backend traces are
// byte-identical across runs.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	if !r.began {
		return fmt.Errorf("trace: recorder was never attached to a run")
	}
	return r.export(w, r.collect(0))
}

// WritePerfettoTail exports only the newest last merged events — the
// flight-recorder tail behind /debug/trace. Safe to call mid-run under
// the best-effort caveat documented on Tail; the export itself is the
// same Perfetto JSON as WritePerfetto and stays structurally valid
// (metadata present, flow arrows matched) even when the cut or the
// dump instant strands half of a pairing.
func (r *Recorder) WritePerfettoTail(w io.Writer, last int) error {
	if !r.began {
		return fmt.Errorf("trace: recorder was never attached to a run")
	}
	return r.export(w, r.collect(last))
}

// export renders a merged record stream as Chrome trace-event JSON.
func (r *Recorder) export(w io.Writer, all []exportRec) error {
	meta := r.meta
	runtimeTID := meta.Cores
	us := func(ts int64) float64 {
		if meta.Wall {
			return float64(ts) / 1e3
		}
		return float64(ts)
	}
	tid := func(worker int32) int {
		if worker < 0 {
			return runtimeTID
		}
		return int(worker)
	}
	nameOf := func(table []string, id int32, kind string) string {
		if id >= 0 && int(id) < len(table) {
			return table[id]
		}
		return fmt.Sprintf("%s#%d", kind, id)
	}

	// A degrade event starts a flow arrow that finishes at the
	// reconfiguration halt it triggers. In a tail dump the halt may lie
	// beyond the recorded window (still pending at dump time), which
	// would leave an unmatched flow start — precompute, for each
	// record, whether a matching halt follows, and skip the arrow when
	// none does.
	haltFollows := make([]bool, len(all))
	pendingHalts := map[int32]int{}
	for i := len(all) - 1; i >= 0; i-- {
		ev := all[i].ev
		if ev.Kind == hinch.TraceDegrade {
			haltFollows[i] = pendingHalts[ev.ID] > 0
		}
		if ev.Kind == hinch.TraceReconfigHalt {
			pendingHalts[ev.ID]++
		}
	}

	events := make([]chromeEvent, 0, len(all)+meta.Cores+2)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]any{"name": "hinch"},
	})
	for c := 0; c < meta.Cores; c++ {
		kind := "core"
		if meta.Wall {
			kind = "worker"
		}
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: c,
			Args: map[string]any{"name": fmt.Sprintf("%s %d", kind, c)},
		})
	}
	events = append(events, chromeEvent{
		Name: "thread_name", Ph: "M", PID: 0, TID: runtimeTID,
		Args: map[string]any{"name": "runtime"},
	})

	dur := func(d int64) *float64 { v := us(d); return &v }
	durUS := func(a, b float64) *float64 { v := b - a; return &v }

	// Pairing state: park→unpark per worker, halt→apply→resume per
	// manager.
	parkStart := map[int32]float64{}
	type reconfig struct {
		halt  float64
		apply float64
		seen  int // 1 = halted, 2 = applied
	}
	reconfigs := map[int32]*reconfig{}
	flowID := 0
	highwater := map[string]int64{}
	// Degrade→halt pairing: a fault event pushed to manager m's queue
	// starts a flow arrow that lands on the reconfiguration it causes.
	degradeFlows := map[int32][]string{}

	for ri, rc := range all {
		ev := rc.ev
		switch ev.Kind {
		case hinch.TraceJobSpan:
			events = append(events, chromeEvent{
				Name: nameOf(meta.Tasks, ev.ID, "task"), Cat: "job", Ph: "X",
				TS: us(ev.TS), Dur: dur(ev.Arg), PID: 0, TID: tid(ev.Worker),
				Args: map[string]any{"iter": ev.Iter},
			})
		case hinch.TraceJobSkip:
			events = append(events, chromeEvent{
				Name: nameOf(meta.Tasks, ev.ID, "task") + " (skip)", Cat: "skip", Ph: "i",
				TS: us(ev.TS), PID: 0, TID: tid(ev.Worker), S: "t",
				Args: map[string]any{"iter": ev.Iter},
			})
		case hinch.TraceJobEnqueue:
			events = append(events, chromeEvent{
				Name: "enqueue " + nameOf(meta.Tasks, ev.ID, "task"), Cat: "sched", Ph: "i",
				TS: us(ev.TS), PID: 0, TID: tid(ev.Worker), S: "t",
				Args: map[string]any{"iter": ev.Iter},
			})
		case hinch.TraceIterLaunch:
			events = append(events, chromeEvent{
				Name: "launch", Cat: "iter", Ph: "i",
				TS: us(ev.TS), PID: 0, TID: tid(ev.Worker), S: "t",
				Args: map[string]any{"iter": ev.Iter},
			})
		case hinch.TraceIterRetire:
			events = append(events, chromeEvent{
				Name: "retire", Cat: "iter", Ph: "i",
				TS: us(ev.TS), PID: 0, TID: tid(ev.Worker), S: "t",
				Args: map[string]any{"iter": ev.Iter, "processed": ev.Arg},
			})
		case hinch.TraceStreamAcquire, hinch.TraceStreamRelease:
			name := nameOf(meta.Streams, ev.ID, "stream")
			if ev.Kind == hinch.TraceStreamAcquire && ev.Arg > highwater[name] {
				highwater[name] = ev.Arg
			}
			events = append(events, chromeEvent{
				Name: "stream " + name, Cat: "stream", Ph: "C",
				TS: us(ev.TS), PID: 0, TID: runtimeTID,
				Args: map[string]any{"occupancy": ev.Arg},
			})
		case hinch.TraceEventPush:
			events = append(events, chromeEvent{
				Name: "queue " + nameOf(meta.Queues, ev.ID, "queue"), Cat: "event", Ph: "C",
				TS: us(ev.TS), PID: 0, TID: runtimeTID,
				Args: map[string]any{"depth": ev.Arg},
			})
		case hinch.TraceEventDrain:
			events = append(events, chromeEvent{
				Name: "queue " + nameOf(meta.Queues, ev.ID, "queue"), Cat: "event", Ph: "C",
				TS: us(ev.TS), PID: 0, TID: runtimeTID,
				Args: map[string]any{"depth": 0},
			})
		case hinch.TraceStealHit:
			events = append(events, chromeEvent{
				Name: fmt.Sprintf("steal from %d", ev.ID), Cat: "sched", Ph: "i",
				TS: us(ev.TS), PID: 0, TID: tid(ev.Worker), S: "t",
			})
		case hinch.TraceBatch:
			events = append(events, chromeEvent{
				Name: "batch", Cat: "sched", Ph: "i",
				TS: us(ev.TS), PID: 0, TID: tid(ev.Worker), S: "t",
				Args: map[string]any{"run": ev.Arg},
			})
		case hinch.TraceTune:
			// An autotuner resize: ID names the task whose replica width
			// changed (or -1 for the stream-FIFO capacity), Arg packs the
			// transition as from<<32|to.
			knob := "streams"
			if ev.ID >= 0 {
				knob = nameOf(meta.Tasks, ev.ID, "task")
			}
			events = append(events, chromeEvent{
				Name: "tune " + knob, Cat: "tune", Ph: "i",
				TS: us(ev.TS), PID: 0, TID: runtimeTID, S: "t",
				Args: map[string]any{
					"epoch": ev.Iter,
					"from":  ev.Arg >> 32,
					"to":    ev.Arg & 0xffffffff,
				},
			})
		case hinch.TraceStall:
			// The telemetry watchdog saw Arg epochs without a retirement.
			events = append(events, chromeEvent{
				Name: "stall", Cat: "watchdog", Ph: "i",
				TS: us(ev.TS), PID: 0, TID: runtimeTID, S: "p",
				Args: map[string]any{"epochs": ev.Arg, "oldest_iter": ev.Iter},
			})
		case hinch.TraceGlobalPop:
			events = append(events, chromeEvent{
				Name: "global pop", Cat: "sched", Ph: "i",
				TS: us(ev.TS), PID: 0, TID: tid(ev.Worker), S: "t",
			})
		case hinch.TracePark:
			parkStart[ev.Worker] = us(ev.TS)
		case hinch.TraceUnpark:
			if start, ok := parkStart[ev.Worker]; ok {
				delete(parkStart, ev.Worker)
				events = append(events, chromeEvent{
					Name: "parked", Cat: "sched", Ph: "X",
					TS: start, Dur: durUS(start, us(ev.TS)), PID: 0, TID: tid(ev.Worker),
				})
			}
		case hinch.TraceRetry:
			// A retry span: the failed attempt's backoff window on the
			// worker that executes the re-attempt.
			events = append(events, chromeEvent{
				Name: "retry " + nameOf(meta.Tasks, ev.ID, "task"), Cat: "fault", Ph: "X",
				TS: us(ev.TS), Dur: dur(ev.Arg), PID: 0, TID: tid(ev.Worker),
				Args: map[string]any{"iter": ev.Iter, "backoff": ev.Arg},
			})
		case hinch.TraceFault:
			events = append(events, chromeEvent{
				Name: "fault " + nameOf(meta.Tasks, ev.ID, "task"), Cat: "fault", Ph: "i",
				TS: us(ev.TS), PID: 0, TID: tid(ev.Worker), S: "t",
				Args: map[string]any{"iter": ev.Iter, "attempt": ev.Arg},
			})
		case hinch.TraceDegrade:
			events = append(events, chromeEvent{
				Name: "degrade " + nameOf(meta.Managers, ev.ID, "manager"), Cat: "fault", Ph: "i",
				TS: us(ev.TS), PID: 0, TID: tid(ev.Worker), S: "p",
				Args: map[string]any{"iter": ev.Iter, "queue_depth": ev.Arg},
			})
			// Start a fault→reconfig flow arrow; it finishes at the halt
			// this fault event triggers. Skipped when no halt follows in
			// the recorded window (the manager ignored the fault, or a
			// tail dump cut before the halt happened).
			if haltFollows[ri] {
				flowID++
				id := fmt.Sprintf("fault-%d", flowID)
				degradeFlows[ev.ID] = append(degradeFlows[ev.ID], id)
				events = append(events, chromeEvent{
					Name: "fault " + nameOf(meta.Managers, ev.ID, "manager"), Cat: "fault", Ph: "s",
					TS: us(ev.TS), PID: 0, TID: tid(ev.Worker), ID: id,
				})
			}
		case hinch.TraceReconfigHalt:
			reconfigs[ev.ID] = &reconfig{halt: us(ev.TS), seen: 1}
			for _, id := range degradeFlows[ev.ID] {
				events = append(events, chromeEvent{
					Name: "fault " + nameOf(meta.Managers, ev.ID, "manager"), Cat: "fault",
					Ph: "f", BP: "e",
					TS: us(ev.TS), PID: 0, TID: runtimeTID, ID: id,
				})
			}
			delete(degradeFlows, ev.ID)
		case hinch.TraceReconfigApply:
			if rc := reconfigs[ev.ID]; rc != nil && rc.seen == 1 {
				rc.apply = us(ev.TS)
				rc.seen = 2
				events = append(events, chromeEvent{
					Name: "reconfig halt " + nameOf(meta.Managers, ev.ID, "manager"),
					Cat:  "reconfig", Ph: "X",
					TS: rc.halt, Dur: durUS(rc.halt, rc.apply), PID: 0, TID: runtimeTID,
					Args: map[string]any{"stall_cycles": ev.Arg},
				})
			}
		case hinch.TraceReconfigResume:
			if rc := reconfigs[ev.ID]; rc != nil && rc.seen == 2 {
				delete(reconfigs, ev.ID)
				end := us(ev.TS)
				mgr := nameOf(meta.Managers, ev.ID, "manager")
				flowID++
				id := fmt.Sprintf("reconfig-%d", flowID)
				events = append(events, chromeEvent{
					Name: "reconfig drain " + mgr, Cat: "reconfig", Ph: "X",
					TS: rc.apply, Dur: durUS(rc.apply, end), PID: 0, TID: runtimeTID,
				}, chromeEvent{
					Name: "reconfig " + mgr, Cat: "reconfig", Ph: "s",
					TS: rc.halt, PID: 0, TID: runtimeTID, ID: id,
				}, chromeEvent{
					Name: "reconfig " + mgr, Cat: "reconfig", Ph: "f", BP: "e",
					TS: end, PID: 0, TID: runtimeTID, ID: id,
				})
			}
		}
	}

	clock := "virtual-cycles"
	if meta.Wall {
		clock = "wall-ns"
	}
	hw := map[string]any{}
	for k, v := range highwater {
		hw[k] = v
	}
	out := chromeTrace{
		TraceEvents: events,
		OtherData: map[string]any{
			"clock":            clock,
			"cores":            meta.Cores,
			"events_recorded":  r.Total(),
			"events_dropped":   r.Dropped(),
			"stream_highwater": hw,
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
