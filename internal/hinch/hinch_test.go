package hinch

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"xspcl/internal/graph"
)

// ---- test components ----------------------------------------------------

// intSource emits its iteration number (payload int) and optionally an
// event stream; EOS after `frames` when set.
type intSource struct {
	frames int
	cost   int64
}

func (c *intSource) Init(ic *InitContext) error {
	var err error
	c.frames, err = ic.IntParam("frames", 0)
	if err != nil {
		return err
	}
	n, err := ic.IntParam("cost", 100)
	c.cost = int64(n)
	return err
}

func (c *intSource) Run(rc *RunContext) error {
	if c.frames > 0 && rc.Iteration() >= c.frames {
		return EOS
	}
	rc.SetOut("out", rc.Iteration())
	rc.Charge(c.cost)
	return nil
}

// doubler multiplies the int payload by 2. Registered stateless: Run
// reads only Init-time fields, so concurrent replicas are safe. The
// spin param burns real CPU on the real backend (Charge is a sim-only
// accounting call), giving the autotuner a genuine bottleneck to widen.
type doubler struct{ cost, spin int64 }

func (c *doubler) Init(ic *InitContext) error {
	n, err := ic.IntParam("cost", 100)
	if err != nil {
		return err
	}
	c.cost = int64(n)
	s, err := ic.IntParam("spin", 0)
	c.spin = int64(s)
	return err
}

func (c *doubler) Run(rc *RunContext) error {
	v, ok := rc.In("in").(int)
	if !ok {
		return fmt.Errorf("doubler: payload %T", rc.In("in"))
	}
	rc.SetOut("out", 2*v+spinWork(c.spin))
	rc.Charge(c.cost)
	return nil
}

// spinWork burns roughly n iterations of integer arithmetic and returns
// zero; the loop-carried dependency and the fed-back result keep the
// compiler from discarding the loop.
func spinWork(n int64) int {
	h := uint64(n) | 1
	for i := int64(0); i < n; i++ {
		h = h*1664525 + 1013904223
	}
	return int(h >> 32 >> 32)
}

// adder adds a constant (param add) to the payload; used inside options
// so the sink can tell which configuration processed an iteration.
type adder struct{ add int }

func (c *adder) Init(ic *InitContext) error {
	var err error
	c.add, err = ic.IntParam("add", 1000)
	return err
}

func (c *adder) Run(rc *RunContext) error {
	v, _ := rc.In("in").(int)
	rc.SetOut("out", v+c.add)
	rc.Charge(50)
	return nil
}

// intSink records payloads in iteration order.
type intSink struct {
	mu   sync.Mutex
	got  []int
	cost int64
}

func (c *intSink) Init(ic *InitContext) error {
	n, err := ic.IntParam("cost", 100)
	c.cost = int64(n)
	return err
}

func (c *intSink) Run(rc *RunContext) error {
	v, _ := rc.In("in").(int)
	c.mu.Lock()
	c.got = append(c.got, v)
	c.mu.Unlock()
	rc.Charge(c.cost)
	return nil
}

func (c *intSink) values() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.got...)
}

// sliceMarker sets bit (1 << slice) on a shared bitmap payload.
type sliceMarker struct{ slice, n int }

func (c *sliceMarker) Init(ic *InitContext) error {
	c.slice, c.n = ic.Slice(), ic.NSlices()
	return nil
}

func (c *sliceMarker) Run(rc *RunContext) error {
	bm, ok := rc.In("in").(*[64]int)
	if !ok {
		return fmt.Errorf("sliceMarker: payload %T", rc.In("in"))
	}
	bm[c.slice] = c.n
	// One designated writer forwards the payload; sibling slices of the
	// same iteration run concurrently on the real backend (see SetOut).
	if c.slice == 0 {
		rc.SetOut("out", bm)
	}
	rc.Charge(10)
	return nil
}

// bitmapSource emits a fresh bitmap each iteration.
type bitmapSource struct{}

func (c *bitmapSource) Init(ic *InitContext) error { return nil }
func (c *bitmapSource) Run(rc *RunContext) error {
	rc.SetOut("out", &[64]int{})
	rc.Charge(10)
	return nil
}

// bitmapSink verifies every expected slice marked.
type bitmapSink struct {
	expect int
	mu     sync.Mutex
	bad    int
	seen   int
}

func (c *bitmapSink) Init(ic *InitContext) error {
	var err error
	c.expect, err = ic.RequireInt("expect")
	return err
}

func (c *bitmapSink) Run(rc *RunContext) error {
	bm, _ := rc.In("in").(*[64]int)
	c.mu.Lock()
	c.seen++
	for i := 0; i < c.expect; i++ {
		if bm[i] != c.expect {
			c.bad++
		}
	}
	c.mu.Unlock()
	rc.Charge(10)
	return nil
}

// emitter sends an event on configured iterations.
type emitter struct {
	queue, event string
	every        int
}

func (c *emitter) Init(ic *InitContext) error {
	c.queue = ic.StringParam("queue", "")
	c.event = ic.StringParam("event", "")
	var err error
	c.every, err = ic.IntParam("every", 0)
	return err
}

func (c *emitter) Run(rc *RunContext) error {
	rc.Charge(10)
	if c.every > 0 && rc.Iteration() > 0 && rc.Iteration()%c.every == 0 {
		return rc.Emit(c.queue, Event{Name: c.event, Arg: fmt.Sprint(rc.Iteration())})
	}
	return nil
}

// failer errors on a configured iteration.
type failer struct{ at int }

func (c *failer) Init(ic *InitContext) error {
	var err error
	c.at, err = ic.IntParam("at", -1)
	return err
}

func (c *failer) Run(rc *RunContext) error {
	rc.Charge(10)
	if rc.Iteration() == c.at {
		return fmt.Errorf("deliberate failure")
	}
	v, _ := rc.In("in").(int)
	rc.SetOut("out", v)
	return nil
}

// reconfigurable records requests it receives.
type reconfigurable struct {
	mu   sync.Mutex
	reqs []string
}

func (c *reconfigurable) Init(ic *InitContext) error { return nil }
func (c *reconfigurable) Run(rc *RunContext) error {
	v, _ := rc.In("in").(int)
	rc.SetOut("out", v)
	rc.Charge(10)
	return nil
}
func (c *reconfigurable) Reconfigure(req string) error {
	c.mu.Lock()
	c.reqs = append(c.reqs, req)
	c.mu.Unlock()
	return nil
}

func testRegistry() *Registry {
	r := NewRegistry()
	r.Register("intsrc", ClassSpec{New: func() Component { return &intSource{} }, Out: []string{"out"}})
	r.Register("double", ClassSpec{New: func() Component { return &doubler{} }, In: []string{"in"}, Out: []string{"out"}, Stateless: true})
	r.Register("adder", ClassSpec{New: func() Component { return &adder{} }, In: []string{"in"}, Out: []string{"out"}})
	r.Register("intsink", ClassSpec{New: func() Component { return &intSink{} }, In: []string{"in"}})
	r.Register("bmsrc", ClassSpec{New: func() Component { return &bitmapSource{} }, Out: []string{"out"}})
	r.Register("marker", ClassSpec{New: func() Component { return &sliceMarker{} }, In: []string{"in"}, Out: []string{"out"}})
	r.Register("bmsink", ClassSpec{New: func() Component { return &bitmapSink{} }, In: []string{"in"}})
	r.Register("emitter", ClassSpec{New: func() Component { return &emitter{} }})
	r.Register("failer", ClassSpec{New: func() Component { return &failer{} }, In: []string{"in"}, Out: []string{"out"}})
	r.Register("reconf", ClassSpec{New: func() Component { return &reconfigurable{} }, In: []string{"in"}, Out: []string{"out"}})
	return r
}

// chainProg builds src -> double -> sink on untyped streams.
func chainProg() *graph.Program {
	b := graph.NewBuilder("chain")
	b.Stream("a").Stream("b")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, nil),
		b.Component("dbl", "double", graph.Ports{"in": "a", "out": "b"}, nil),
		b.Component("snk", "intsink", graph.Ports{"in": "b"}, nil),
	)
	return b.MustProgram()
}

func runApp(t *testing.T, prog *graph.Program, cfg Config, iters int) (*App, *Report) {
	t.Helper()
	app, err := NewApp(prog, testRegistry(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := app.Run(iters)
	if err != nil {
		t.Fatal(err)
	}
	return app, rep
}

// ---- tests ---------------------------------------------------------------

func TestChainSimProducesOrderedResults(t *testing.T) {
	app, rep := runApp(t, chainProg(), Config{Backend: BackendSim, Cores: 2}, 10)
	sink := app.Component("snk").(*intSink)
	vals := sink.values()
	if len(vals) != 10 {
		t.Fatalf("sink saw %d values", len(vals))
	}
	for i, v := range vals {
		if v != 2*i {
			t.Fatalf("value %d = %d, want %d", i, v, 2*i)
		}
	}
	if rep.Iterations != 10 {
		t.Fatalf("iterations %d", rep.Iterations)
	}
	if rep.Cycles <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if rep.Jobs != 30 {
		t.Fatalf("jobs %d, want 30", rep.Jobs)
	}
}

func TestChainRealProducesOrderedResults(t *testing.T) {
	app, rep := runApp(t, chainProg(), Config{Backend: BackendReal, Cores: 4, EagerWorkers: true}, 50)
	sink := app.Component("snk").(*intSink)
	vals := sink.values()
	if len(vals) != 50 {
		t.Fatalf("sink saw %d values", len(vals))
	}
	for i, v := range vals {
		if v != 2*i {
			t.Fatalf("value %d = %d (out of order?)", i, v)
		}
	}
	if rep.Wall <= 0 {
		t.Fatal("no wall time measured")
	}
}

func TestSimDeterminism(t *testing.T) {
	_, r1 := runApp(t, chainProg(), Config{Backend: BackendSim, Cores: 3}, 20)
	_, r2 := runApp(t, chainProg(), Config{Backend: BackendSim, Cores: 3}, 20)
	if r1.Cycles != r2.Cycles || r1.Jobs != r2.Jobs {
		t.Fatalf("sim not deterministic: %d/%d vs %d/%d cycles/jobs", r1.Cycles, r1.Jobs, r2.Cycles, r2.Jobs)
	}
}

func TestPipelineParallelismOverlapsIterations(t *testing.T) {
	// A 3-stage chain of equal-cost jobs on 3 cores with pipeline depth
	// 3 must approach 1 job-time per iteration; with depth 1 it costs 3
	// job-times per iteration.
	deep, shallow := Config{Backend: BackendSim, Cores: 3, PipelineDepth: 3},
		Config{Backend: BackendSim, Cores: 3, PipelineDepth: 1}
	_, rDeep := runApp(t, chainProg(), deep, 30)
	_, rShallow := runApp(t, chainProg(), shallow, 30)
	if float64(rDeep.Cycles) > 0.55*float64(rShallow.Cycles) {
		t.Fatalf("pipelining ineffective: deep=%d shallow=%d", rDeep.Cycles, rShallow.Cycles)
	}
}

func TestMoreCoresFasterWithSlices(t *testing.T) {
	b := graph.NewBuilder("sliced")
	b.Stream("a").Stream("b")
	b.Body(
		b.Component("src", "bmsrc", graph.Ports{"out": "a"}, nil),
		b.Parallel(graph.ShapeSlice, 8,
			b.Component("m", "marker", graph.Ports{"in": "a", "out": "b"}, nil),
		),
		b.Component("snk", "bmsink", graph.Ports{"in": "b"}, graph.Params{"expect": "8"}),
	)
	prog := b.MustProgram()
	_, r1 := runApp(t, prog, Config{Backend: BackendSim, Cores: 1}, 20)
	app8, r8 := runApp(t, prog, Config{Backend: BackendSim, Cores: 8}, 20)
	if r8.Cycles >= r1.Cycles {
		t.Fatalf("8 cores (%d cycles) not faster than 1 (%d)", r8.Cycles, r1.Cycles)
	}
	snk := app8.Component("snk").(*bmsinkAlias)
	_ = snk
}

// bmsinkAlias lets the test fetch the concrete sink type.
type bmsinkAlias = bitmapSink

func TestAllSlicesExecute(t *testing.T) {
	b := graph.NewBuilder("sliced")
	b.Stream("a").Stream("b")
	b.Body(
		b.Component("src", "bmsrc", graph.Ports{"out": "a"}, nil),
		b.Parallel(graph.ShapeSlice, 6,
			b.Component("m", "marker", graph.Ports{"in": "a", "out": "b"}, nil),
		),
		b.Component("snk", "bmsink", graph.Ports{"in": "b"}, graph.Params{"expect": "6"}),
	)
	for _, backend := range []Backend{BackendSim, BackendReal} {
		app, _ := runApp(t, b.MustProgram(), Config{Backend: backend, Cores: 3}, 15)
		snk := app.Component("snk").(*bitmapSink)
		if snk.seen != 15 || snk.bad != 0 {
			t.Fatalf("backend %d: seen=%d bad=%d", backend, snk.seen, snk.bad)
		}
	}
}

func TestEOSStopsRun(t *testing.T) {
	b := graph.NewBuilder("eos")
	b.Stream("a").Stream("b")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, graph.Params{"frames": "7"}),
		b.Component("dbl", "double", graph.Ports{"in": "a", "out": "b"}, nil),
		b.Component("snk", "intsink", graph.Ports{"in": "b"}, nil),
	)
	for _, backend := range []Backend{BackendSim, BackendReal} {
		app, rep := runApp(t, b.MustProgram(), Config{Backend: backend, Cores: 2}, -1)
		if rep.Iterations != 7 {
			t.Fatalf("backend %d: iterations %d, want 7", backend, rep.Iterations)
		}
		sink := app.Component("snk").(*intSink)
		if len(sink.values()) != 7 {
			t.Fatalf("backend %d: sink saw %d", backend, len(sink.values()))
		}
	}
}

func TestComponentErrorAborts(t *testing.T) {
	b := graph.NewBuilder("fail")
	b.Stream("a").Stream("b")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, nil),
		b.Component("f", "failer", graph.Ports{"in": "a", "out": "b"}, graph.Params{"at": "5"}),
		b.Component("snk", "intsink", graph.Ports{"in": "b"}, nil),
	)
	for _, backend := range []Backend{BackendSim, BackendReal} {
		app, err := NewApp(b.MustProgram(), testRegistry(), Config{Backend: backend, Cores: 2})
		if err != nil {
			t.Fatal(err)
		}
		_, err = app.Run(20)
		if err == nil || !strings.Contains(err.Error(), "deliberate failure") {
			t.Fatalf("backend %d: error = %v", backend, err)
		}
	}
}

// reconfigProg: src -> (manager: base adder + optional extra adder) -> sink,
// with an emitter toggling the option.
func reconfigProg(defaultOn bool, every int) *graph.Program {
	b := graph.NewBuilder("reconfig")
	b.Stream("a").Stream("b").Stream("c")
	b.Queue("ui")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, nil),
		b.Component("em", "emitter", nil, graph.Params{
			"queue": "ui", "event": "flip", "every": fmt.Sprint(every)}),
		b.Manager("m", "ui",
			[]graph.EventBinding{graph.On("flip", graph.ActionToggle, "extra")},
			b.Component("base", "adder", graph.Ports{"in": "a", "out": "b"}, graph.Params{"add": "0"}),
			b.Option("extra", defaultOn,
				b.Component("x", "adder", graph.Ports{"in": "b", "out": "b"}, graph.Params{"add": "1000"}),
			),
		),
		b.Component("dbl", "double", graph.Ports{"in": "b", "out": "c"}, graph.Params{"cost": "10"}),
		b.Component("snk", "intsink", graph.Ports{"in": "c"}, nil),
	)
	return b.MustProgram()
}

func TestReconfigurationTogglesOption(t *testing.T) {
	for _, backend := range []Backend{BackendSim, BackendReal} {
		app, rep := runApp(t, reconfigProg(false, 10), Config{Backend: backend, Cores: 2, PipelineDepth: 3}, 60)
		if rep.Reconfigs < 2 {
			t.Fatalf("backend %d: only %d reconfigs", backend, rep.Reconfigs)
		}
		sink := app.Component("snk").(*intSink)
		vals := sink.values()
		if len(vals) != 60 {
			t.Fatalf("backend %d: %d values", backend, len(vals))
		}
		// Early iterations must be plain 2*i (option off); after the
		// first toggle some iterations must include +2000 (adder before
		// doubling).
		if vals[0] != 0 || vals[1] != 2 {
			t.Fatalf("backend %d: early values wrong: %v", backend, vals[:5])
		}
		boosted := 0
		for i, v := range vals {
			switch v {
			case 2 * i:
			case 2*i + 2000:
				boosted++
			default:
				t.Fatalf("backend %d: value %d = %d, want %d or %d", backend, i, v, 2*i, 2*i+2000)
			}
		}
		if boosted == 0 || boosted == len(vals) {
			t.Fatalf("backend %d: boosted=%d of %d — option never toggled", backend, boosted, len(vals))
		}
	}
}

func TestReconfigStallAccountedInSim(t *testing.T) {
	_, rep := runApp(t, reconfigProg(false, 10), Config{Backend: BackendSim, Cores: 2, PipelineDepth: 3}, 60)
	if rep.ReconfigStall <= 0 {
		t.Fatal("no reconfiguration stall recorded")
	}
	_, static := runApp(t, reconfigProg(false, 1000), Config{Backend: BackendSim, Cores: 2, PipelineDepth: 3}, 60)
	if rep.Cycles <= static.Cycles {
		t.Fatalf("reconfiguring run (%d) not slower than static (%d)", rep.Cycles, static.Cycles)
	}
}

func TestEnableDisableIgnoredWhenAlreadyInState(t *testing.T) {
	// Binding "flip" to Enable when already enabled must not reconfigure.
	b := graph.NewBuilder("noop")
	b.Stream("a").Stream("b")
	b.Queue("ui")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, nil),
		b.Component("em", "emitter", nil, graph.Params{"queue": "ui", "event": "flip", "every": "5"}),
		b.Manager("m", "ui",
			[]graph.EventBinding{graph.On("flip", graph.ActionEnable, "opt")},
			b.Option("opt", true,
				b.Component("x", "adder", graph.Ports{"in": "a", "out": "b"}, graph.Params{"add": "5"}),
			),
		),
		b.Component("snk", "intsink", graph.Ports{"in": "b"}, nil),
	)
	_, rep := runApp(t, b.MustProgram(), Config{Backend: BackendSim, Cores: 2}, 30)
	if rep.Reconfigs != 0 {
		t.Fatalf("%d reconfigs for already-enabled option", rep.Reconfigs)
	}
}

func TestForwardAction(t *testing.T) {
	// Manager m1 forwards "flip" to queue q2; manager m2 toggles its
	// option on it.
	b := graph.NewBuilder("fwd")
	b.Stream("a").Stream("b")
	b.Queue("q1").Queue("q2")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, nil),
		b.Component("em", "emitter", nil, graph.Params{"queue": "q1", "event": "flip", "every": "8"}),
		b.Manager("m1", "q1",
			[]graph.EventBinding{graph.On("flip", graph.ActionForward, "q2")},
			b.Component("base", "adder", graph.Ports{"in": "a", "out": "b"}, graph.Params{"add": "0"}),
		),
		b.Manager("m2", "q2",
			[]graph.EventBinding{graph.On("flip", graph.ActionToggle, "opt")},
			b.Option("opt", false,
				b.Component("x", "adder", graph.Ports{"in": "b", "out": "b"}, graph.Params{"add": "7000"}),
			),
		),
		b.Component("snk", "intsink", graph.Ports{"in": "b"}, nil),
	)
	_, rep := runApp(t, b.MustProgram(), Config{Backend: BackendSim, Cores: 2}, 40)
	if rep.Reconfigs == 0 {
		t.Fatal("forwarded event never caused a reconfiguration")
	}
}

func TestReconfigRequestDelivery(t *testing.T) {
	b := graph.NewBuilder("req")
	b.Stream("a").Stream("b")
	b.Queue("ui")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, nil),
		b.Component("em", "emitter", nil, graph.Params{"queue": "ui", "event": "move", "every": "6"}),
		b.Manager("m", "ui",
			[]graph.EventBinding{graph.On("move", graph.ActionReconfig, "pos=1,2")},
			b.Component("rc", "reconf", graph.Ports{"in": "a", "out": "b"}, nil),
		),
		b.Component("snk", "intsink", graph.Ports{"in": "b"}, nil),
	)
	app, rep := runApp(t, b.MustProgram(), Config{Backend: BackendSim, Cores: 2}, 30)
	if rep.Reconfigs != 0 {
		t.Fatalf("reconfig requests should not halt the graph, got %d reconfigs", rep.Reconfigs)
	}
	comp := app.Component("rc").(*reconfigurable)
	if len(comp.reqs) == 0 {
		t.Fatal("no reconfiguration requests delivered")
	}
	for _, r := range comp.reqs {
		if r != "pos=1,2" {
			t.Fatalf("bad request %q", r)
		}
	}
}

func TestInjectedEventFromOutside(t *testing.T) {
	// Events can also be pushed into a queue from outside the graph
	// (e.g. a UI thread).
	prog := reconfigProg(false, 100000)
	app, err := NewApp(prog, testRegistry(), Config{Backend: BackendReal, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	app.Queue("ui").Push(Event{Name: "flip"})
	rep, err := app.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Reconfigs != 1 {
		t.Fatalf("%d reconfigs from injected event", rep.Reconfigs)
	}
	on := app.Options()["extra"]
	if !on {
		t.Fatal("option not enabled after injected toggle")
	}
}

func TestAppRunTwiceFails(t *testing.T) {
	app, err := NewApp(chainProg(), testRegistry(), Config{Backend: BackendSim})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(3); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(3); err == nil {
		t.Fatal("second run accepted")
	}
}

func TestUnknownClassRejectedAtConstruction(t *testing.T) {
	b := graph.NewBuilder("bad")
	b.Stream("a")
	b.Body(b.Component("x", "nosuch", graph.Ports{"out": "a"}, nil))
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewApp(prog, testRegistry(), Config{Backend: BackendSim}); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestRegistryBasics(t *testing.T) {
	r := testRegistry()
	if len(r.Classes()) != 10 {
		t.Fatalf("%d classes", len(r.Classes()))
	}
	in, out, err := r.ClassPorts("double")
	if err != nil || len(in) != 1 || len(out) != 1 {
		t.Fatalf("ClassPorts: %v %v %v", in, out, err)
	}
	if _, _, err := r.ClassPorts("nosuch"); err == nil {
		t.Fatal("unknown class resolved")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate registration did not panic")
			}
		}()
		r.Register("double", ClassSpec{New: func() Component { return &doubler{} }})
	}()
}

func TestEventQueueFIFO(t *testing.T) {
	q := NewEventQueue()
	for i := 0; i < 5; i++ {
		q.Push(Event{Name: fmt.Sprint(i)})
	}
	if q.Len() != 5 {
		t.Fatalf("len %d", q.Len())
	}
	evs := q.Drain()
	for i, ev := range evs {
		if ev.Name != fmt.Sprint(i) {
			t.Fatalf("order broken at %d: %s", i, ev.Name)
		}
	}
	if q.Drain() != nil || q.Len() != 0 {
		t.Fatal("drain not empty")
	}
}

func TestEOSIsErrorsIsCompatible(t *testing.T) {
	if !errors.Is(fmt.Errorf("wrap: %w", EOS), EOS) {
		t.Fatal("EOS does not support errors.Is through wrapping")
	}
}

func TestReportString(t *testing.T) {
	_, rep := runApp(t, chainProg(), Config{Backend: BackendSim, Cores: 2}, 5)
	s := rep.String()
	if !strings.Contains(s, "iterations=5") || !strings.Contains(s, "cycles=") {
		t.Fatalf("report string: %s", s)
	}
	if rep.CyclesPerIteration() <= 0 {
		t.Fatal("cycles per iteration")
	}
	if u := rep.Utilisation(); u <= 0 || u > 1 {
		t.Fatalf("utilisation %f", u)
	}
}

func TestPerClassStats(t *testing.T) {
	_, rep := runApp(t, chainProg(), Config{Backend: BackendSim, Cores: 1}, 8)
	for _, class := range []string{"intsrc", "double", "intsink"} {
		cs, ok := rep.PerClass[class]
		if !ok || cs.Jobs != 8 || cs.Ops <= 0 {
			t.Fatalf("class %s stats %+v ok=%v", class, cs, ok)
		}
	}
}

func TestCrossIterationOrderingPerInstance(t *testing.T) {
	// The sink sees iterations in order even with many cores, because
	// each instance is serialised across iterations.
	app, _ := runApp(t, chainProg(), Config{Backend: BackendReal, Cores: 8, PipelineDepth: 8, EagerWorkers: true}, 200)
	vals := app.Component("snk").(*intSink).values()
	for i, v := range vals {
		if v != 2*i {
			t.Fatalf("iteration order violated at %d: %d", i, v)
		}
	}
}

func TestStreamBackpressureBoundsBuffers(t *testing.T) {
	// With StreamCapacity 2 the pools must never grow past 2 buffers,
	// however deep the pipeline window is.
	prog := chainProg()
	app, err := NewApp(prog, testRegistry(), Config{
		Backend: BackendSim, Cores: 4, PipelineDepth: 5, StreamCapacity: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(40); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if got := app.Stream(name).BuffersAllocated(); got > 2 {
			t.Fatalf("stream %s grew to %d buffers", name, got)
		}
	}
}

func TestStreamCapacityClampedToDepth(t *testing.T) {
	app, err := NewApp(chainProg(), testRegistry(), Config{
		Backend: BackendSim, Cores: 2, PipelineDepth: 2, StreamCapacity: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(10); err != nil {
		t.Fatal(err)
	}
	if got := app.Stream("a").BuffersAllocated(); got > 2 {
		t.Fatalf("capacity not clamped: %d buffers", got)
	}
}

func TestBufferPoolReusedAtOneCore(t *testing.T) {
	// One core, oldest-first scheduling: at most 2 iterations ever
	// overlap, so the pool should stay at ~2 buffers even with a deep
	// window and generous capacity.
	app, err := NewApp(chainProg(), testRegistry(), Config{
		Backend: BackendSim, Cores: 1, PipelineDepth: 5, StreamCapacity: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(30); err != nil {
		t.Fatal(err)
	}
	if got := app.Stream("a").BuffersAllocated(); got > 2 {
		t.Fatalf("1-core run grew pool to %d buffers", got)
	}
}

func TestOptionTasksSkipWhenDisabled(t *testing.T) {
	// The superplan carries the option's tasks, but while disabled they
	// must not run the component (jobs metric counts only real runs).
	prog := reconfigProg(false, 100000) // never toggles
	app, err := NewApp(prog, testRegistry(), Config{Backend: BackendSim, Cores: 2})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := app.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if cs, ok := rep.PerClass["adder"]; !ok || cs.Jobs != 10 {
		// Only the "base" adder runs; the optional "x" is skipped.
		t.Fatalf("adder jobs = %+v", rep.PerClass["adder"])
	}
	if app.Component("x") != nil {
		t.Fatal("disabled option's component was instantiated")
	}
}

func TestManagerGateHoldsLaterIterations(t *testing.T) {
	// During a reconfiguration the engine must not run any iteration's
	// subgraph beyond the gate until the splice: we verify post-hoc via
	// the option-enable boundary being clean (no interleaving of boosted
	// and unboosted values).
	app, rep := runApp(t, reconfigProg(false, 16), Config{Backend: BackendSim, Cores: 4, PipelineDepth: 5}, 64)
	if rep.Reconfigs < 2 {
		t.Fatalf("reconfigs %d", rep.Reconfigs)
	}
	vals := app.Component("snk").(*intSink).values()
	// Find state transitions; between transitions the state must be
	// constant (a clean iteration boundary per splice).
	transitions := 0
	for i := 1; i < len(vals); i++ {
		prevBoost := vals[i-1] != 2*(i-1)
		curBoost := vals[i] != 2*i
		if prevBoost != curBoost {
			transitions++
		}
	}
	if transitions != rep.Reconfigs {
		t.Fatalf("%d state transitions for %d reconfigs — splice not atomic at iteration boundary", transitions, rep.Reconfigs)
	}
}

func TestWorklessSkipsComponentWork(t *testing.T) {
	app, err := NewApp(chainProg(), testRegistry(), Config{Backend: BackendSim, Cores: 1, Workless: false})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := app.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	// Workless run must produce the same virtual time for this app
	// (costs are charged either way).
	app2, err := NewApp(chainProg(), testRegistry(), Config{Backend: BackendSim, Cores: 1, Workless: true})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := app2.Run(5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != rep2.Cycles {
		t.Fatalf("workless changed cycles: %d vs %d", rep.Cycles, rep2.Cycles)
	}
}

func TestLazyCreationChargesStall(t *testing.T) {
	run := func(lazy bool) *Report {
		app, err := NewApp(reconfigProg(false, 10), testRegistry(), Config{
			Backend: BackendSim, Cores: 2, LazyCreation: lazy,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := app.Run(40)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	eager, lazy := run(false), run(true)
	if eager.Reconfigs == 0 || lazy.Reconfigs == 0 {
		t.Fatal("no reconfigurations happened")
	}
	if lazy.ReconfigStall <= eager.ReconfigStall {
		t.Fatalf("lazy creation should lengthen the quiescent stall: eager=%d lazy=%d",
			eager.ReconfigStall, lazy.ReconfigStall)
	}
}

func TestTwoIndependentManagers(t *testing.T) {
	// Two managers with their own queues and options must reconfigure
	// independently.
	b := graph.NewBuilder("twomgr")
	b.Stream("a").Stream("b").Stream("c")
	b.Queue("q1").Queue("q2")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, nil),
		b.Component("e1", "emitter", nil, graph.Params{"queue": "q1", "event": "f1", "every": "10"}),
		b.Component("e2", "emitter", nil, graph.Params{"queue": "q2", "event": "f2", "every": "15"}),
		b.Manager("m1", "q1",
			[]graph.EventBinding{graph.On("f1", graph.ActionToggle, "o1")},
			b.Component("base1", "adder", graph.Ports{"in": "a", "out": "b"}, graph.Params{"add": "0"}),
			b.Option("o1", false,
				b.Component("x1", "adder", graph.Ports{"in": "b", "out": "b"}, graph.Params{"add": "1000"}),
			),
		),
		b.Manager("m2", "q2",
			[]graph.EventBinding{graph.On("f2", graph.ActionToggle, "o2")},
			b.Component("base2", "adder", graph.Ports{"in": "b", "out": "c"}, graph.Params{"add": "0"}),
			b.Option("o2", false,
				b.Component("x2", "adder", graph.Ports{"in": "c", "out": "c"}, graph.Params{"add": "100000"}),
			),
		),
		b.Component("snk", "intsink", graph.Ports{"in": "c"}, nil),
	)
	for _, backend := range []Backend{BackendSim, BackendReal} {
		app, rep := runApp(t, b.MustProgram(), Config{Backend: backend, Cores: 3}, 60)
		if rep.Reconfigs < 4 {
			t.Fatalf("backend %d: only %d reconfigs across two managers", backend, rep.Reconfigs)
		}
		vals := app.Component("snk").(*intSink).values()
		saw := map[int]bool{}
		for i, v := range vals {
			d := v - i
			if d != 0 && d != 1000 && d != 100000 && d != 101000 {
				t.Fatalf("backend %d: value %d has impossible boost %d", backend, i, d)
			}
			saw[d] = true
		}
		// Both options toggled at least once: at least three distinct
		// states appear over the run.
		if len(saw) < 3 {
			t.Fatalf("backend %d: option states seen: %v", backend, saw)
		}
	}
}

func TestNestedManagers(t *testing.T) {
	// An inner manager (with its own option) nested inside an outer
	// manager's subgraph; only the inner one toggles.
	b := graph.NewBuilder("nested")
	b.Stream("a").Stream("b")
	b.Queue("outer").Queue("inner")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, nil),
		b.Component("em", "emitter", nil, graph.Params{"queue": "inner", "event": "flip", "every": "8"}),
		b.Manager("mo", "outer", nil,
			b.Component("base", "adder", graph.Ports{"in": "a", "out": "b"}, graph.Params{"add": "0"}),
			b.Manager("mi", "inner",
				[]graph.EventBinding{graph.On("flip", graph.ActionToggle, "oi")},
				b.Option("oi", false,
					b.Component("x", "adder", graph.Ports{"in": "b", "out": "b"}, graph.Params{"add": "500"}),
				),
			),
		),
		b.Component("snk", "intsink", graph.Ports{"in": "b"}, nil),
	)
	app, rep := runApp(t, b.MustProgram(), Config{Backend: BackendSim, Cores: 2}, 40)
	if rep.Reconfigs < 2 {
		t.Fatalf("%d reconfigs", rep.Reconfigs)
	}
	vals := app.Component("snk").(*intSink).values()
	boosted := 0
	for i, v := range vals {
		switch v - i {
		case 0:
		case 500:
			boosted++
		default:
			t.Fatalf("value %d = %d", i, v)
		}
	}
	if boosted == 0 || boosted == len(vals) {
		t.Fatalf("inner option never toggled: %d/%d", boosted, len(vals))
	}
}

func TestEOSDuringReconfigurationDrains(t *testing.T) {
	// A source hitting EOS while a manager is halted must still drain
	// cleanly (no deadlock) and count only completed frames.
	b := graph.NewBuilder("eosreconf")
	b.Stream("a").Stream("b")
	b.Queue("ui")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, graph.Params{"frames": "22"}),
		b.Component("em", "emitter", nil, graph.Params{"queue": "ui", "event": "flip", "every": "20"}),
		b.Manager("m", "ui",
			[]graph.EventBinding{graph.On("flip", graph.ActionToggle, "opt")},
			b.Option("opt", false,
				b.Component("x", "adder", graph.Ports{"in": "a", "out": "b"}, graph.Params{"add": "1"}),
			),
			b.Component("base", "adder", graph.Ports{"in": "a", "out": "b"}, graph.Params{"add": "0"}),
		),
		b.Component("snk", "intsink", graph.Ports{"in": "b"}, nil),
	)
	for _, backend := range []Backend{BackendSim, BackendReal} {
		_, rep := runApp(t, b.MustProgram(), Config{Backend: backend, Cores: 2}, -1)
		if rep.Iterations != 22 {
			t.Fatalf("backend %d: %d iterations", backend, rep.Iterations)
		}
	}
}
