package hinch

import (
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the real backend's work-stealing dispatch layer.
// Each worker owns a deque of ready jobs: the owner pushes and pops at
// the tail (LIFO — the most recently released successor consumes data
// its producer just wrote, so it is the cache-warm choice), while
// thieves steal from the head (FIFO — the oldest work, most likely from
// an earlier iteration the victim has moved past). Jobs released
// outside any worker context (initial launch) go to a shared overflow
// queue that workers drain alongside their deques.
//
// Idle workers park on a per-worker buffered channel after registering
// on an idle list; producers wake exactly one parked worker per push
// instead of broadcasting on a global condvar, which avoids the
// thundering herd the seed scheduler suffered from.

// wsDeque is a mutex-guarded deque of jobs. Contention is naturally
// low: only the owner and occasional thieves touch it, and the critical
// sections are a few instructions.
type wsDeque struct {
	mu   sync.Mutex
	buf  []job
	head int          // index of the oldest element in buf
	size atomic.Int32 // approximate length, for cheap emptiness probes
}

func (d *wsDeque) push(j job) {
	d.mu.Lock()
	d.buf = append(d.buf, j)
	d.size.Add(1)
	d.mu.Unlock()
}

// pop removes the newest job (owner side, LIFO).
func (d *wsDeque) pop() (job, bool) {
	if d.size.Load() == 0 {
		return job{}, false
	}
	d.mu.Lock()
	if d.head == len(d.buf) {
		d.mu.Unlock()
		return job{}, false
	}
	n := len(d.buf) - 1
	j := d.buf[n]
	d.buf[n] = job{}
	d.buf = d.buf[:n]
	if d.head == len(d.buf) {
		d.buf = d.buf[:0]
		d.head = 0
	}
	d.size.Add(-1)
	d.mu.Unlock()
	return j, true
}

// steal removes the oldest job (thief side, FIFO).
func (d *wsDeque) steal() (job, bool) {
	if d.size.Load() == 0 {
		return job{}, false
	}
	d.mu.Lock()
	if d.head == len(d.buf) {
		d.mu.Unlock()
		return job{}, false
	}
	j := d.buf[d.head]
	d.buf[d.head] = job{}
	d.head++
	if d.head == len(d.buf) {
		d.buf = d.buf[:0]
		d.head = 0
	}
	d.size.Add(-1)
	d.mu.Unlock()
	return j, true
}

// wsWorker is one worker goroutine's scheduler state plus its private
// metrics shards (merged into the engine once, when the run stops,
// instead of bouncing shared counters on every job).
type wsWorker struct {
	id   int
	dq   wsDeque
	park chan struct{} // buffered(1): a pending wake token
	rng  uint64        // xorshift state for victim selection

	jobs  int64
	stats []ClassStats // per-task-ID shard, merged by class at run end
	rc    RunContext   // reusable run context for this worker's jobs

	// Scheduler action counters, folded into Report.Sched at run end.
	stealAttempts int64 // calls to sched.steal (local deque was empty)
	steals        int64 // jobs taken from another worker's deque
	globalPops    int64 // jobs taken from the global overflow queue
	parks         int64 // times this worker blocked waiting for work
	wakes         int64 // idle workers this worker unparked

	// lastTS is the worker's cached trace timestamp: the end of its
	// last executed job (refreshed also after a steal hit or unpark).
	// Only maintained while a tracer is attached; secondary trace
	// events reuse it instead of reading the clock.
	lastTS int64
}

// nextRand is a xorshift64 step — victim order only needs to be cheap
// and spread out, not high quality.
func (w *wsWorker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// sched is the shared work-stealing state of one real-backend run.
type sched struct {
	workers []*wsWorker
	global  wsDeque   // jobs released outside worker context
	hooks   TestHooks // test-only schedule perturbation; nil in production

	// inflight counts jobs that are queued or executing. It is
	// incremented before a job becomes visible in any queue and
	// decremented only after its execution (including all the releases
	// it performs) has finished, so inflight==0 is a stable property:
	// the run is either finished or stalled, and the observing worker
	// triggers termination.
	inflight atomic.Int64

	idleMu sync.Mutex
	idle   []*wsWorker
	nidle  atomic.Int32
	done   atomic.Bool

	tr       Tracer       // flight recorder; nil in production
	trStart  time.Time    // trace timestamps count from this instant
	extWakes atomic.Int64 // wakes performed outside any worker context
}

func newSched(n, nTasks int, hooks TestHooks) *sched {
	s := &sched{workers: make([]*wsWorker, n), hooks: hooks}
	for i := range s.workers {
		seed := uint64(i)*0x9e3779b97f4a7c15 + 1
		if hooks != nil {
			// Reseed the victim sequence so schedule exploration visits
			// steal orders the default seeding never produces. Zero keeps
			// the default (xorshift must not start at 0).
			if hs := hooks.StealSeed(i); hs != 0 {
				seed = hs
			}
		}
		s.workers[i] = &wsWorker{
			id:    i,
			park:  make(chan struct{}, 1),
			rng:   seed,
			stats: make([]ClassStats, nTasks),
		}
		s.workers[i].rc.shard = i + 1
		s.workers[i].dq.buf = make([]job, 0, 64)
	}
	return s
}

// push makes a job runnable. Jobs released by a worker land on its own
// deque; others go to the global queue. A worker's first pending job
// wakes nobody — the worker itself pops it as soon as it finishes the
// job it is executing — so a plain pipeline (every completion releasing
// exactly one successor) runs without any wake traffic at all.
func (s *sched) push(w *wsWorker, j job) {
	if s.hooks != nil {
		s.hooks.Yield(YieldEnqueue)
	}
	s.inflight.Add(1)
	if w != nil {
		w.dq.push(j)
		if w.dq.size.Load() <= 1 {
			return
		}
	} else {
		s.global.push(j)
	}
	if s.nidle.Load() > 0 {
		if s.wakeOne() {
			if w != nil {
				w.wakes++
			} else {
				s.extWakes.Add(1)
			}
		}
	}
}

// wakeOne unparks one idle worker, if any, reporting whether it did.
func (s *sched) wakeOne() bool {
	s.idleMu.Lock()
	var w *wsWorker
	if n := len(s.idle); n > 0 {
		w = s.idle[n-1]
		s.idle = s.idle[:n-1]
		s.nidle.Store(int32(len(s.idle)))
	}
	s.idleMu.Unlock()
	if w != nil {
		w.park <- struct{}{} // buffered; never blocks
		return true
	}
	return false
}

// steal scans the other workers (starting at a pseudo-random victim)
// and the global queue for work.
func (s *sched) steal(w *wsWorker) (job, bool) {
	w.stealAttempts++
	n := len(s.workers)
	start := int(w.nextRand() % uint64(n))
	for i := 0; i < n; i++ {
		v := s.workers[(start+i)%n]
		if v == w {
			continue
		}
		if j, ok := v.dq.steal(); ok {
			w.steals++
			if s.tr != nil {
				// The stolen job came from a cold deque; refresh the
				// cached timestamp so its span starts here, not at this
				// worker's last job.
				w.lastTS = int64(time.Since(s.trStart))
				s.tr.Emit(w.id+1, TraceEvent{
					TS: w.lastTS, Kind: TraceStealHit,
					Worker: int32(w.id), Iter: -1, ID: int32(v.id),
				})
			}
			return j, true
		}
	}
	j, ok := s.global.steal()
	if ok {
		w.globalPops++
		if s.tr != nil {
			w.lastTS = int64(time.Since(s.trStart))
			s.tr.Emit(w.id+1, TraceEvent{
				TS: w.lastTS, Kind: TraceGlobalPop,
				Worker: int32(w.id), Iter: -1, ID: -1,
			})
		}
	}
	return j, ok
}

// anyQueued reports whether any queue holds work (approximate; used
// only to avoid parking with work visible).
func (s *sched) anyQueued() bool {
	if s.global.size.Load() > 0 {
		return true
	}
	for _, w := range s.workers {
		if w.dq.size.Load() > 0 {
			return true
		}
	}
	return false
}

// park blocks w until new work may be available or the run stops. The
// re-check after registering on the idle list closes the missed-wakeup
// window: a producer that saw nidle==0 before our registration must
// have published its job before we scan the queues.
func (s *sched) park(w *wsWorker) {
	s.idleMu.Lock()
	s.idle = append(s.idle, w)
	s.nidle.Store(int32(len(s.idle)))
	s.idleMu.Unlock()
	if s.done.Load() || s.anyQueued() {
		// Deregister; if someone already granted us a wake token,
		// consume it instead.
		s.idleMu.Lock()
		removed := false
		for i, x := range s.idle {
			if x == w {
				s.idle = append(s.idle[:i], s.idle[i+1:]...)
				removed = true
				break
			}
		}
		s.nidle.Store(int32(len(s.idle)))
		s.idleMu.Unlock()
		if !removed {
			s.blockPark(w)
		}
		return
	}
	s.blockPark(w)
}

// blockPark is park's blocking wait, bracketed by park/unpark trace
// events. The post-wake refresh of the cached timestamp keeps the idle
// gap out of the next job's span.
func (s *sched) blockPark(w *wsWorker) {
	w.parks++
	if s.tr != nil {
		s.tr.Emit(w.id+1, TraceEvent{
			TS: int64(time.Since(s.trStart)), Kind: TracePark,
			Worker: int32(w.id), Iter: -1, ID: -1,
		})
	}
	<-w.park
	if s.tr != nil {
		w.lastTS = int64(time.Since(s.trStart))
		s.tr.Emit(w.id+1, TraceEvent{
			TS: w.lastTS, Kind: TraceUnpark,
			Worker: int32(w.id), Iter: -1, ID: -1,
		})
	}
}

// finish stops the run: all parked workers are woken and the done flag
// stops the rest at their next loop check.
func (s *sched) finish() {
	if s.done.Swap(true) {
		return
	}
	s.idleMu.Lock()
	idle := s.idle
	s.idle = nil
	s.nidle.Store(0)
	s.idleMu.Unlock()
	for _, w := range idle {
		w.park <- struct{}{}
	}
}
