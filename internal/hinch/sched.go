package hinch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// This file implements the real backend's work-stealing dispatch layer.
// Each worker owns a deque of ready jobs: the owner pushes and pops at
// the tail (LIFO — the most recently released successor consumes data
// its producer just wrote, so it is the cache-warm choice), while
// thieves steal from the head (FIFO — the oldest work, most likely from
// an earlier iteration the victim has moved past). Jobs released
// outside any worker context (initial launch) go to a shared overflow
// queue that workers drain alongside their deques.
//
// Idle workers park on a per-worker buffered channel after registering
// on an idle list; producers wake exactly one parked worker per push
// instead of broadcasting on a global condvar, which avoids the
// thundering herd the seed scheduler suffered from.

// wsDeque is a mutex-guarded deque of jobs. Contention is naturally
// low: only the owner and occasional thieves touch it, and the critical
// sections are a few instructions.
type wsDeque struct {
	mu   sync.Mutex
	buf  []job
	head int          // index of the oldest element in buf
	size atomic.Int32 // approximate length, for cheap emptiness probes
}

//hinch:hotpath
func (d *wsDeque) push(j job) {
	d.mu.Lock()
	d.buf = append(d.buf, j)
	d.size.Add(1)
	d.mu.Unlock()
}

// pushN appends a batch of jobs in one lock acquisition — the deque
// half of batched dispatch (one interaction per run of released jobs
// instead of one per job).
//
//hinch:hotpath
func (d *wsDeque) pushN(js []job) {
	d.mu.Lock()
	d.buf = append(d.buf, js...)
	d.size.Add(int32(len(js)))
	d.mu.Unlock()
}

// pop removes the newest job (owner side, LIFO).
func (d *wsDeque) pop() (job, bool) {
	if d.size.Load() == 0 {
		return job{}, false
	}
	d.mu.Lock()
	if d.head == len(d.buf) {
		d.mu.Unlock()
		return job{}, false
	}
	n := len(d.buf) - 1
	j := d.buf[n]
	d.buf[n] = job{}
	d.buf = d.buf[:n]
	if d.head == len(d.buf) {
		d.buf = d.buf[:0]
		d.head = 0
	}
	d.size.Add(-1)
	d.mu.Unlock()
	return j, true
}

// steal removes the oldest job (thief side, FIFO).
func (d *wsDeque) steal() (job, bool) {
	var buf [1]job
	if d.stealN(buf[:], 1) == 1 {
		return buf[0], true
	}
	return job{}, false
}

// stealN removes up to max oldest jobs into dst (thief side, FIFO) and
// reports how many it took: at most half of what is queued (rounded
// up), so the victim keeps the cache-warm tail it is about to pop. One
// lock acquisition moves the whole run, where single-job stealing
// would re-contend the victim's deque per job.
//
//hinch:hotpath
func (d *wsDeque) stealN(dst []job, max int) int {
	if d.size.Load() == 0 {
		return 0
	}
	d.mu.Lock()
	avail := len(d.buf) - d.head
	if avail == 0 {
		d.mu.Unlock()
		return 0
	}
	take := (avail + 1) / 2
	if take > max {
		take = max
	}
	copy(dst[:take], d.buf[d.head:d.head+take])
	for i := 0; i < take; i++ {
		d.buf[d.head+i] = job{}
	}
	d.head += take
	if d.head == len(d.buf) {
		d.buf = d.buf[:0]
		d.head = 0
	}
	d.size.Add(int32(-take))
	d.mu.Unlock()
	return take
}

// wsWorker is one worker goroutine's scheduler state plus its private
// metrics shards (merged into the engine once, when the run stops,
// instead of bouncing shared counters on every job).
type wsWorker struct {
	id   int
	dq   wsDeque
	park chan struct{} // buffered(1): a pending wake token
	rng  uint64        // xorshift state for victim selection

	jobs  int64
	stats []ClassStats // per-task-ID shard, merged by class at run end
	rc    RunContext   // reusable run context for this worker's jobs

	// relBuf collects the jobs released by the job this worker is
	// executing; flushReleases publishes them as one batch when the job
	// finishes (and may divert one into next, below).
	relBuf []job

	// next/hasNext is the worker's chained job: the cross-iteration
	// release of the task it just ran (same component, next frame),
	// executed back-to-back without touching any queue. chain counts
	// the run length so far, capped by sched.maxChain.
	next    job
	hasNext bool
	chain   int

	// stealBuf is the scratch the worker steals batches into.
	stealBuf [stealMax]job

	// woken marks that this worker's pending park token came from
	// wakeOne (and counted in sched.wakePending); set before the token
	// send, consumed by blockPark after the token receive.
	woken bool

	// tmTick strides the telemetry service-time sampling: worker-local,
	// bumped once per component job, sampled when the low
	// tmSampleShift bits are zero. Only advanced with telemetry on.
	tmTick uint32

	// Scheduler action counters, folded into Report.Sched at run end.
	stealAttempts int64 // calls to sched.steal (local deque was empty)
	steals        int64 // jobs taken from another worker's deque
	globalPops    int64 // jobs taken from the global overflow queue
	parks         int64 // times this worker blocked waiting for work
	wakes         int64 // idle workers this worker unparked
	batches       int64 // multi-job batch publishes (pushBatch calls)
	chained       int64 // jobs run straight off the chain, bypassing the deques

	// lastTS is the worker's cached trace timestamp: the end of its
	// last executed job (refreshed also after a steal hit or unpark).
	// Only maintained while a tracer is attached; secondary trace
	// events reuse it instead of reading the clock.
	lastTS int64
}

// nextRand is a xorshift64 step — victim order only needs to be cheap
// and spread out, not high quality.
func (w *wsWorker) nextRand() uint64 {
	x := w.rng
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	w.rng = x
	return x
}

// stealMax caps how many jobs one steal moves: enough to amortise the
// victim-deque lock over a run, small enough that work keeps spreading
// to further thieves.
const stealMax = 8

// sched is the shared work-stealing state of one real-backend run.
type sched struct {
	workers []*wsWorker
	global  wsDeque   // jobs released outside worker context
	hooks   TestHooks // test-only schedule perturbation; nil in production

	// maxChain bounds the run of same-task consecutive iterations a
	// worker executes back-to-back off its chain slot (see
	// flushReleases): the stream FIFO capacity — a longer run would
	// outrun the buffer window and stall on backpressure anyway —
	// capped so freshly released work still reaches the deques for
	// thieves.
	maxChain int

	// pinned mirrors Config.PinWorkers: steal-victim scanning then
	// walks outward from the thief's id (nearest core first) instead of
	// starting at a random victim.
	pinned bool

	// Topology-aware worker bring-up. Worker 0 runs on the caller's
	// goroutine; the rest are brought online one at a time by
	// signalWork, only while fewer than spawnCap workers exist —
	// min(Cores, NumCPU, GOMAXPROCS), because a dispatch worker beyond
	// the host's usable parallelism never runs concurrently with the
	// others and only adds thread churn. eager restores the
	// spawn-everything-up-front behaviour (schedule exploration via
	// TestHooks, pinned topologies, Config.EagerWorkers).
	eager    bool
	spawnCap int
	spawned  atomic.Int32    // workers online, worker 0 included
	spawn    func(*wsWorker) // starts one worker goroutine; set by runReal

	// inflight counts jobs that are queued or executing. It is
	// incremented before a job becomes visible in any queue and
	// decremented only after its execution (including all the releases
	// it performs) has finished, so inflight==0 is a stable property:
	// the run is either finished or stalled, and the observing worker
	// triggers termination.
	inflight atomic.Int64

	idleMu sync.Mutex
	idle   []*wsWorker
	nidle  atomic.Int32
	done   atomic.Bool

	// wakePending counts workers woken but not yet rescheduled (the
	// token was sent, the worker hasn't come out of its park). Producers
	// skip waking while one is pending: piling futex wakes into that
	// window just queues context switches — on an oversubscribed host
	// they serialise against the very CPU the producer is using — and
	// the pending worker will see the new work anyway when it scans.
	// Spreading to further workers resumes as a cascade: each woken
	// worker that steals a surplus wakes the next (see steal).
	wakePending atomic.Int32

	tr       Tracer       // flight recorder; nil in production
	trStart  time.Time    // trace timestamps count from this instant
	extWakes atomic.Int64 // wakes performed outside any worker context

	tm *telemetry // live telemetry; nil unless Config.Telemetry
}

func newSched(cfg Config, nTasks int) *sched {
	n := cfg.Cores
	hooks := cfg.Hooks
	s := &sched{
		workers: make([]*wsWorker, n),
		hooks:   hooks,
		pinned:  cfg.PinWorkers,
	}
	s.maxChain = cfg.StreamCapacity
	if s.maxChain > stealMax {
		s.maxChain = stealMax
	}
	s.eager = hooks != nil || cfg.PinWorkers || cfg.EagerWorkers
	s.spawnCap = n
	if !s.eager {
		if c := runtime.NumCPU(); c < s.spawnCap {
			s.spawnCap = c
		}
		if c := runtime.GOMAXPROCS(0); c < s.spawnCap {
			s.spawnCap = c
		}
	}
	s.spawned.Store(1)
	s.idle = make([]*wsWorker, 0, n)
	for i := range s.workers {
		seed := uint64(i)*0x9e3779b97f4a7c15 + 1
		if hooks != nil {
			// Reseed the victim sequence so schedule exploration visits
			// steal orders the default seeding never produces. Zero keeps
			// the default (xorshift must not start at 0).
			if hs := hooks.StealSeed(i); hs != 0 {
				seed = hs
			}
		}
		s.workers[i] = &wsWorker{
			id:    i,
			park:  make(chan struct{}, 1),
			rng:   seed,
			stats: make([]ClassStats, nTasks),
		}
		s.workers[i].rc.shard = i + 1
		s.workers[i].dq.buf = make([]job, 0, 64)
		s.workers[i].relBuf = make([]job, 0, 32)
	}
	return s
}

// push makes a job runnable. Jobs released by a worker land on its own
// deque; others go to the global queue. A worker's first pending job
// wakes nobody — the worker itself pops it as soon as it finishes the
// job it is executing — so a plain pipeline (every completion releasing
// exactly one successor) runs without any wake traffic at all.
func (s *sched) push(w *wsWorker, j job) {
	if s.hooks != nil {
		s.hooks.Yield(YieldEnqueue)
	}
	s.inflight.Add(1)
	if w != nil {
		w.dq.push(j)
		if w.dq.size.Load() <= 1 {
			return
		}
	} else {
		s.global.push(j)
	}
	if s.signalWork() {
		if w != nil {
			w.wakes++
		} else {
			s.extWakes.Add(1)
		}
	}
}

// pushBatch makes a run of jobs released by one execution runnable in
// a single publish: one inflight add, one deque lock and at most one
// wake, where per-job pushes pay all three per job — the cross-worker
// traffic that made adding workers slow the scheduler down. busy says
// the owner already holds a chained next job, so the whole batch (not
// all but one) is up for grabs by thieves.
//
//hinch:hotpath
func (s *sched) pushBatch(w *wsWorker, js []job, busy bool) {
	if len(js) == 0 {
		return
	}
	if s.hooks != nil {
		s.hooks.Yield(YieldEnqueue)
	}
	s.inflight.Add(int64(len(js)))
	w.dq.pushN(js)
	if len(js) > 1 {
		w.batches++
	}
	spare := len(js)
	if !busy {
		spare--
	}
	if spare > 0 && s.signalWork() {
		w.wakes++
	}
}

// wakeOne unparks one idle worker, if any, reporting whether it did.
// The woken worker is marked pending until it actually resumes
// (blockPark clears it), throttling further wakes to one in flight.
func (s *sched) wakeOne() bool {
	s.idleMu.Lock()
	var w *wsWorker
	if n := len(s.idle); n > 0 {
		w = s.idle[n-1]
		s.idle = s.idle[:n-1]
		s.nidle.Store(int32(len(s.idle)))
	}
	s.idleMu.Unlock()
	if w != nil {
		s.wakePending.Add(1)
		w.woken = true
		w.park <- struct{}{} // buffered; never blocks
		return true
	}
	return false
}

// signalWork notifies the scheduler that runnable work was published
// beyond what its producer will consume itself: wake a parked worker,
// or — if nobody is parked and the topology cap allows — bring the
// next not-yet-started worker online. No-op while a previously
// notified worker has not engaged yet (wakePending), so backlogs ramp
// workers up one at a time instead of queueing futex wakes. Reports
// whether a worker was notified.
func (s *sched) signalWork() bool {
	if s.wakePending.Load() != 0 {
		return false
	}
	if s.nidle.Load() > 0 {
		return s.wakeOne()
	}
	for {
		n := s.spawned.Load()
		if int(n) >= s.spawnCap || s.spawn == nil {
			return false
		}
		if s.spawned.CompareAndSwap(n, n+1) {
			w := s.workers[n]
			s.wakePending.Add(1)
			w.woken = true
			s.spawn(w)
			return true
		}
	}
}

// steal scans the other workers and the global queue for work. Victim
// order is pseudo-random by default; with pinned workers it walks
// outward from the thief's id (±1, ±2, …), so work migrates between
// near cores first. A hit takes a batch (up to half the victim's
// deque): the first job is returned, the rest land on the thief's own
// deque, and one more idle worker is woken to keep the work spreading.
//
//hinch:hotpath
func (s *sched) steal(w *wsWorker) (job, bool) {
	w.stealAttempts++
	if s.tm != nil {
		s.tm.recordStealTry()
	}
	n := len(s.workers)
	start := 0
	if !s.pinned && n > 1 {
		start = int(w.nextRand() % uint64(n))
	}
	for i := 0; i < n; i++ {
		var v *wsWorker
		if s.pinned {
			if i == 0 {
				continue
			}
			// Ring offsets 1, -1, 2, -2, …: nearest ids (nearest
			// cores, with one worker pinned per core) first.
			off := (i + 1) / 2
			if i%2 == 0 {
				off = n - off
			}
			v = s.workers[(w.id+off)%n]
		} else {
			v = s.workers[(start+i)%n]
			if v == w {
				continue
			}
		}
		took := v.dq.stealN(w.stealBuf[:], stealMax)
		if took == 0 {
			continue
		}
		w.steals += int64(took)
		if s.tm != nil {
			s.tm.recordSteal(int64(took))
		}
		if took > 1 {
			w.dq.pushN(w.stealBuf[1:took])
			if s.signalWork() {
				w.wakes++
			}
		}
		if s.tr != nil {
			// The stolen run came from a cold deque; refresh the
			// cached timestamp so its span starts here, not at this
			// worker's last job.
			w.lastTS = int64(time.Since(s.trStart))
			s.tr.Emit(w.id+1, TraceEvent{
				TS: w.lastTS, Kind: TraceStealHit,
				Worker: int32(w.id), Iter: -1, ID: int32(v.id), Arg: int64(took),
			})
		}
		return w.stealBuf[0], true
	}
	j, ok := s.global.steal()
	if ok {
		w.globalPops++
		if s.tm != nil {
			s.tm.recordGlobalPop()
		}
		if s.tr != nil {
			w.lastTS = int64(time.Since(s.trStart))
			s.tr.Emit(w.id+1, TraceEvent{
				TS: w.lastTS, Kind: TraceGlobalPop,
				Worker: int32(w.id), Iter: -1, ID: -1,
			})
		}
	}
	return j, ok
}

// anyQueued reports whether any queue holds work (approximate; used
// only to avoid parking with work visible).
func (s *sched) anyQueued() bool {
	if s.global.size.Load() > 0 {
		return true
	}
	for _, w := range s.workers {
		if w.dq.size.Load() > 0 {
			return true
		}
	}
	return false
}

// park blocks w until new work may be available or the run stops. The
// re-check after registering on the idle list closes the missed-wakeup
// window: a producer that saw nidle==0 before our registration must
// have published its job before we scan the queues.
func (s *sched) park(w *wsWorker) {
	s.idleMu.Lock()
	s.idle = append(s.idle, w)
	s.nidle.Store(int32(len(s.idle)))
	s.idleMu.Unlock()
	if s.done.Load() || s.anyQueued() {
		// Deregister; if someone already granted us a wake token,
		// consume it instead.
		s.idleMu.Lock()
		removed := false
		for i, x := range s.idle {
			if x == w {
				s.idle = append(s.idle[:i], s.idle[i+1:]...)
				removed = true
				break
			}
		}
		s.nidle.Store(int32(len(s.idle)))
		s.idleMu.Unlock()
		if !removed {
			s.blockPark(w)
		}
		return
	}
	s.blockPark(w)
}

// blockPark is park's blocking wait, bracketed by park/unpark trace
// events. The post-wake refresh of the cached timestamp keeps the idle
// gap out of the next job's span.
func (s *sched) blockPark(w *wsWorker) {
	w.parks++
	var t0 time.Time
	if s.tm != nil {
		t0 = time.Now()
	}
	if s.tr != nil {
		s.tr.Emit(w.id+1, TraceEvent{
			TS: int64(time.Since(s.trStart)), Kind: TracePark,
			Worker: int32(w.id), Iter: -1, ID: -1,
		})
	}
	<-w.park
	if s.tm != nil {
		s.tm.recordPark(int64(time.Since(t0)))
	}
	if w.woken {
		w.woken = false
		s.wakePending.Add(-1)
	}
	if s.tr != nil {
		w.lastTS = int64(time.Since(s.trStart))
		s.tr.Emit(w.id+1, TraceEvent{
			TS: w.lastTS, Kind: TraceUnpark,
			Worker: int32(w.id), Iter: -1, ID: -1,
		})
	}
}

// finish stops the run: all parked workers are woken and the done flag
// stops the rest at their next loop check.
func (s *sched) finish() {
	if s.done.Swap(true) {
		return
	}
	s.idleMu.Lock()
	idle := s.idle
	s.idle = nil
	s.nidle.Store(0)
	s.idleMu.Unlock()
	for _, w := range idle {
		w.park <- struct{}{}
	}
}
