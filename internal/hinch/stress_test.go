package hinch

import (
	"fmt"
	"strings"
	"testing"

	"xspcl/internal/graph"
)

// Stress tests for the real backend's work-stealing scheduler. These
// are the tests that must stay green under `go test -race`: many
// workers, wide fan-out, long chains, and error paths.

// initFailer is a component whose construction fails — used to drive
// errors out of the reconfiguration splice (option instance creation
// inside the quiescent window).
type initFailer struct{}

func (c *initFailer) Init(ic *InitContext) error { return fmt.Errorf("deliberate init failure") }
func (c *initFailer) Run(rc *RunContext) error   { return nil }

func stressRegistry() *Registry {
	r := testRegistry()
	r.Register("initfail", ClassSpec{New: func() Component { return &initFailer{} }, In: []string{"in"}, Out: []string{"out"}})
	return r
}

// wideStressProg fans one source out to `width` slice markers that all
// write the same shared bitmap, then checks every mark at the sink —
// any lost release, duplicate execution, or reordering shows up as a
// bad bitmap or a wrong iteration count.
func wideStressProg(width int) *graph.Program {
	b := graph.NewBuilder("widestress")
	b.Stream("a").Stream("b")
	b.Body(
		b.Component("src", "bmsrc", graph.Ports{"out": "a"}, nil),
		b.Parallel(graph.ShapeSlice, width,
			b.Component("m", "marker", graph.Ports{"in": "a", "out": "b"}, nil),
		),
		b.Component("snk", "bmsink", graph.Ports{"in": "b"}, graph.Params{"expect": fmt.Sprint(width)}),
	)
	return b.MustProgram()
}

func TestRealStressWideFanout8Workers(t *testing.T) {
	const width, iters = 16, 300
	app, rep := runApp(t, wideStressProg(width), Config{Backend: BackendReal, Cores: 8, EagerWorkers: true}, iters)
	if rep.Iterations != iters {
		t.Fatalf("ran %d iterations, want %d", rep.Iterations, iters)
	}
	sink := app.Component("snk").(*bitmapSink)
	if sink.seen != iters || sink.bad != 0 {
		t.Fatalf("sink saw %d iterations with %d bad slices", sink.seen, sink.bad)
	}
}

func TestRealStressChainOrdered8Workers(t *testing.T) {
	const iters = 500
	app, rep := runApp(t, chainProg(), Config{Backend: BackendReal, Cores: 8, EagerWorkers: true}, iters)
	if rep.Iterations != iters {
		t.Fatalf("ran %d iterations, want %d", rep.Iterations, iters)
	}
	vals := app.Component("snk").(*intSink).values()
	if len(vals) != iters {
		t.Fatalf("sink got %d values, want %d", len(vals), iters)
	}
	// Cross-iteration serialization per instance means the sink runs in
	// iteration order even with 8 workers racing.
	for i, v := range vals {
		if v != 2*i {
			t.Fatalf("value %d = %d, want %d", i, v, 2*i)
		}
	}
}

func TestRealStressReconfiguring8Workers(t *testing.T) {
	const iters = 200
	app, rep := runApp(t, reconfigProg(false, 10),
		Config{Backend: BackendReal, Cores: 8, PipelineDepth: 3, EagerWorkers: true}, iters)
	if rep.Reconfigs < 2 {
		t.Fatalf("only %d reconfigs", rep.Reconfigs)
	}
	vals := app.Component("snk").(*intSink).values()
	if len(vals) != iters {
		t.Fatalf("sink got %d values, want %d", len(vals), iters)
	}
	for i, v := range vals {
		if v != 2*i && v != 2*i+2000 {
			t.Fatalf("value %d = %d, want %d or %d", i, v, 2*i, 2*i+2000)
		}
	}
}

// lazyFailProg embeds an option whose component cannot be constructed.
// With LazyCreation the instance is created inside applyReconfig — at
// the quiescent window, during a job's complete() — so this exercises
// the explicit error return from complete() on both backends.
func lazyFailProg() *graph.Program {
	b := graph.NewBuilder("lazyfail")
	b.Stream("a").Stream("b")
	b.Queue("ui")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, nil),
		b.Component("em", "emitter", nil, graph.Params{
			"queue": "ui", "event": "boost", "every": "5"}),
		b.Manager("m", "ui",
			[]graph.EventBinding{graph.On("boost", graph.ActionEnable, "extra")},
			b.Component("base", "adder", graph.Ports{"in": "a", "out": "b"}, graph.Params{"add": "0"}),
			b.Option("extra", false,
				b.Component("x", "initfail", graph.Ports{"in": "b", "out": "b"}, nil),
			),
		),
		b.Component("snk", "intsink", graph.Ports{"in": "b"}, nil),
	)
	return b.MustProgram()
}

func TestCompleteErrorAbortsRun(t *testing.T) {
	for _, backend := range []Backend{BackendSim, BackendReal} {
		app, err := NewApp(lazyFailProg(), stressRegistry(), Config{
			Backend: backend, Cores: 8, LazyCreation: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = app.Run(40)
		if err == nil || !strings.Contains(err.Error(), "deliberate init failure") {
			t.Fatalf("backend %d: error = %v, want init failure surfaced from complete()", backend, err)
		}
	}
}
