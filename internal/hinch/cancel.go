package hinch

// This file implements the run's cooperative cancellation. A run
// started with App.RunContext watches the context's done channel at
// the engine's own pace and, when it fires, reuses the EOS machinery:
// noteCancel stops further launches and marks every in-flight
// iteration cancelled, so the remaining jobs drain through the
// dependency machinery as zero-cost no-ops, every iteration retires
// (uncounted), and the stream slots and iterState free-lists come back
// exactly as on a clean finish. Cancellation is therefore never an
// abort — it is an early EOS injected from outside the graph — and a
// cancelled run returns a valid partial Report (Outcome =
// OutcomeCancelled) with a nil error.
//
// Observation points differ per backend:
//
//   - sim: runSim polls the done channel at exactly one place, the top
//     of its event loop, before dispatching ready jobs. The sweep then
//     lands on a virtual-cycle boundary, and when the cancel itself is
//     raised from inside the simulation (a component or fault injector
//     calling the CancelFunc — context cancellation closes the done
//     channel synchronously), the whole cancelled schedule is as
//     deterministic as any other sim run: traces are byte-identical
//     across repeats. A cancel raised from another goroutine is still
//     honoured at the next boundary, just not reproducibly placed.
//   - real: every worker probes the done channel at its dispatch
//     boundary (pollCancelReal, loop top of runWorker), so a cancel
//     takes effect within one job per worker; a watcher goroutine
//     (joined before runReal returns, so a cancelled run leaks
//     nothing) backstops the case where all workers are parked or
//     deep in long components. Retry-backoff and injected-delay
//     sleeps select on the same channel (sleepInterruptible), so a
//     worker parked in a policy backoff wakes immediately instead of
//     serving out a sleep nobody will consume.

import "time"

// noteCancel cancels the whole run: no further iterations launch and
// every in-flight iteration is marked cancelled, which turns its
// remaining jobs into zero-cost no-ops (the EOS drain path). Idempotent.
// Must be called with mu held on the real backend.
func (e *engine) noteCancel() {
	if e.cancelled.Swap(true) {
		return
	}
	if e.stopLaunch < 0 || e.nextLaunch < e.stopLaunch {
		e.stopLaunch = e.nextLaunch
	}
	e.eachIter(func(it *iterState) {
		it.cancelled.Store(true)
	})
}

// pollCancel is the sim backend's single cancellation observation
// point: a non-blocking probe of the run context's done channel. The
// nil fast path keeps context-free runs at one predictable branch.
func (e *engine) pollCancel() {
	if e.ctxDone == nil || e.cancelled.Load() {
		return
	}
	select {
	case <-e.ctxDone:
		e.noteCancel()
	default:
	}
}

// pollCancelReal is the real backend's per-worker observation point,
// called at the dispatch boundary (once per loop turn in runWorker).
// The common paths — no context, or already swept — are a single
// predictable branch; only the first worker to observe the fired
// context pays for the lock and the sweep.
//
//hinch:hotpath
func (e *engine) pollCancelReal() {
	if e.ctxDone == nil || e.cancelled.Load() {
		return
	}
	select {
	case <-e.ctxDone:
		e.mu.Lock()
		e.noteCancel()
		e.mu.Unlock()
	default:
	}
}

// sleepInterruptible sleeps for d on the real backend, returning false
// when the run context was cancelled first. Without a context it is a
// plain time.Sleep, as before cancellation existed.
func (e *engine) sleepInterruptible(d time.Duration) bool {
	if e.ctxDone == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-e.ctxDone:
		return false
	}
}

// abortSleep records that a policy sleep was cut short by cancellation:
// the run is cancelled as a whole (the watcher goroutine will sweep the
// other iterations too, but the worker must not proceed on the strength
// of a race). Real backend only; takes mu.
func (e *engine) abortSleep() {
	e.mu.Lock()
	e.noteCancel()
	e.mu.Unlock()
}
