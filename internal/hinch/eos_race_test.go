package hinch

import (
	"runtime"
	"sync/atomic"
	"testing"

	"xspcl/internal/graph"
)

// eosRaceHooks widens execReal's documented benign window: the
// lock-free cancelled/acquired probe happens at dispatch, and a
// concurrent noteEOS can cancel the iteration before the component's
// first stream access. Yielding at the dispatch boundary invites the
// EOS-driven cancellation into exactly that window.
type eosRaceHooks struct {
	seed uint64
	ctr  atomic.Uint64
}

func (h *eosRaceHooks) Yield(p YieldPoint) {
	if p != YieldDispatch && p != YieldComplete {
		return
	}
	if (h.ctr.Add(1)+h.seed)%5 == 0 {
		runtime.Gosched()
	}
}

func (h *eosRaceHooks) StealSeed(worker int) uint64 {
	return h.seed*0x9E3779B97F4A7C15 + uint64(worker) + 1
}

// TestEOSCancellationRaceStaysBenign pins the semantics of the real
// backend's deliberate dispatch race (see execReal in real.go): a
// component job may observe cancelled==false just before EOS cancels
// its iteration and run redundantly. That is allowed — but it must
// stay benign:
//
//   - Report.Iterations is exactly the source's frame count;
//   - the sink's first `frames` records are the correct values in
//     iteration order (cross-iteration instance ordering survives);
//   - redundant post-EOS sink runs are bounded by one pipeline window.
//
// Run under -race at 8 workers this also asserts the window is free of
// data races (CI runs this package with -race).
func TestEOSCancellationRaceStaysBenign(t *testing.T) {
	const frames = 12
	const depth = 6
	b := graph.NewBuilder("eosrace")
	b.Stream("a").Stream("b")
	b.Body(
		b.Component("src", "intsrc", graph.Ports{"out": "a"}, graph.Params{"frames": "12"}),
		b.Component("dbl", "double", graph.Ports{"in": "a", "out": "b"}, nil),
		b.Component("snk", "intsink", graph.Ports{"in": "b"}, nil),
	)
	prog := b.MustProgram()
	for run := 0; run < 40; run++ {
		app, err := NewApp(prog, testRegistry(), Config{
			Backend:        BackendReal,
			Cores:          8,
			PipelineDepth:  depth,
			StreamCapacity: 4,
			Hooks:          &eosRaceHooks{seed: uint64(run)},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := app.Run(-1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Iterations != frames {
			t.Fatalf("run %d: %d iterations, want %d", run, rep.Iterations, frames)
		}
		vals := app.Component("snk").(*intSink).values()
		if len(vals) < frames {
			t.Fatalf("run %d: sink saw only %d values", run, len(vals))
		}
		if len(vals) > frames+depth+1 {
			t.Fatalf("run %d: cancelled tail leaked %d extra sink runs (max %d)", run, len(vals)-frames, depth+1)
		}
		// The processed prefix must be exact and ordered; values of the
		// redundant tail (cancelled iterations racing their skip) are
		// unspecified and ignored.
		for i := 0; i < frames; i++ {
			if vals[i] != 2*i {
				t.Fatalf("run %d: vals[%d] = %d, want %d", run, i, vals[i], 2*i)
			}
		}
	}
}
