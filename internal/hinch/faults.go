package hinch

import (
	"fmt"
	"time"
)

// FaultKind classifies what a FaultInjector does to one component
// attempt.
type FaultKind int

const (
	// FaultNone leaves the attempt alone.
	FaultNone FaultKind = iota
	// FaultError makes the attempt fail with an injected error before
	// the component runs.
	FaultError
	// FaultPanic makes the attempt panic before the component runs; the
	// engine's containment must convert it into an error.
	FaultPanic
	// FaultDelay charges a latency spike at the component boundary —
	// virtual cycles on sim (1ns = 1 cycle), a sleep on real — and then
	// runs the component normally. Used to trip deadline watchdogs.
	FaultDelay
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultError:
		return "error"
	case FaultPanic:
		return "panic"
	case FaultDelay:
		return "delay"
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// Fault is one injected fault. The zero value injects nothing.
type Fault struct {
	Kind  FaultKind
	Delay time.Duration // FaultDelay only
}

// FaultInjector decides, at every component dispatch, whether to
// inject a fault. It is consulted once per attempt (retries see
// attempt 1, 2, ...), before the component's Run executes, so a failed
// injected attempt never has partial side effects. Implementations
// must be safe for concurrent use: the real backend calls Inject from
// every worker. Config.Faults is nil in production — the engine
// nil-guards every consultation, same as TestHooks and Tracer.
type FaultInjector interface {
	Inject(task string, iter, attempt int) Fault
}

// SeededFaults is a deterministic hash-based FaultInjector: whether a
// given (task, iteration, attempt) is faulted depends only on Seed, so
// runs replay identically on both backends at any worker count.
type SeededFaults struct {
	Seed uint64
	// Rate injects a fault on roughly one in Rate attempts (default 16).
	// Ignored when From >= 0.
	Rate int
	// Task restricts injection to tasks whose name contains this
	// substring ("" = all component tasks).
	Task string
	// Kind is the fault to inject (default FaultError).
	Kind FaultKind
	// Delay is the latency spike for FaultDelay (default 2ms).
	Delay time.Duration
	// From, when >= 0, switches to a deterministic schedule: every
	// attempt of matching tasks at iterations >= From faults. This is
	// what the conformance harness and the -inject-faults from=N flag
	// use to force policy exhaustion and degradation.
	From int
}

// Inject implements FaultInjector.
func (s *SeededFaults) Inject(task string, iter, attempt int) Fault {
	if s.Task != "" && !containsSubstr(task, s.Task) {
		return Fault{}
	}
	f := Fault{Kind: s.Kind, Delay: s.Delay}
	if f.Kind == FaultNone {
		f.Kind = FaultError
	}
	if f.Kind == FaultDelay && f.Delay == 0 {
		f.Delay = 2 * time.Millisecond
	}
	if s.From >= 0 && s.From <= iter {
		return f
	}
	if s.From >= 0 {
		return Fault{}
	}
	rate := s.Rate
	if rate <= 0 {
		rate = 16
	}
	h := s.Seed ^ 0x9E3779B97F4A7C15
	for i := 0; i < len(task); i++ {
		h = (h ^ uint64(task[i])) * 0x100000001B3
	}
	h ^= uint64(iter)<<20 ^ uint64(attempt)
	// splitmix64 finalizer, same mixing discipline as the conformance
	// generator's rnd.
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	if h%uint64(rate) != 0 {
		return Fault{}
	}
	return f
}

func containsSubstr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// ParseFaultSpec parses an xspclrun -inject-faults flag value of the
// form "seed=N[,task=SUBSTR][,rate=M][,kind=error|panic|delay]
// [,delay=DUR][,from=K]" into a SeededFaults injector.
func ParseFaultSpec(spec string) (*SeededFaults, error) {
	s := &SeededFaults{From: -1}
	for _, part := range splitNonEmpty(spec, ',') {
		k, v, ok := cutByte(part, '=')
		if !ok {
			return nil, fmt.Errorf("hinch: fault spec %q: want key=value pairs", spec)
		}
		switch k {
		case "seed":
			if _, err := fmt.Sscanf(v, "%d", &s.Seed); err != nil {
				return nil, fmt.Errorf("hinch: fault spec: bad seed %q", v)
			}
		case "rate":
			if _, err := fmt.Sscanf(v, "%d", &s.Rate); err != nil || s.Rate < 1 {
				return nil, fmt.Errorf("hinch: fault spec: bad rate %q", v)
			}
		case "task":
			s.Task = v
		case "kind":
			switch v {
			case "error":
				s.Kind = FaultError
			case "panic":
				s.Kind = FaultPanic
			case "delay":
				s.Kind = FaultDelay
			default:
				return nil, fmt.Errorf("hinch: fault spec: bad kind %q (want error, panic or delay)", v)
			}
		case "delay":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("hinch: fault spec: bad delay %q", v)
			}
			s.Delay = d
		case "from":
			if _, err := fmt.Sscanf(v, "%d", &s.From); err != nil || s.From < 0 {
				return nil, fmt.Errorf("hinch: fault spec: bad from %q", v)
			}
		default:
			return nil, fmt.Errorf("hinch: fault spec: unknown key %q", k)
		}
	}
	return s, nil
}

func splitNonEmpty(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func cutByte(s string, sep byte) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}
