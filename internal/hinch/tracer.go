package hinch

// This file defines the runtime's always-available tracing surface: a
// flight recorder the engine feeds span and counter events while a run
// executes. Like Config.Hooks, the tracer is nil in production — every
// emission site is guarded by one predictable branch — and the
// reference implementation (a lock-free per-worker ring buffer with a
// Perfetto exporter) lives in internal/hinch/trace, keeping the hot
// path free of any I/O or allocation.
//
// Timestamps live in two clock domains, chosen per backend:
//
//   - sim: the virtual cycle clock of the discrete-event simulation.
//     Traces are then fully deterministic — two runs of the same
//     program produce byte-identical exports — and diffable across
//     scheduler changes.
//   - real: monotonic nanoseconds since the run started. Clock reads
//     cost tens of nanoseconds on virtualised hosts, so the engine
//     reads the clock once per executed job (at span end) and reuses
//     the cached value for every other event in that job's wake
//     (enqueues, retirement, stream releases). Event timestamps on the
//     real backend are therefore exact at span boundaries and
//     conservatively stale (by at most one job) elsewhere.
//
// Write safety follows a shard discipline rather than locks: shard 0
// is only written under the engine lock (or by the single sim
// goroutine), and shard w+1 is only written by worker w. A Tracer
// implementation may therefore keep one plain ring per shard with no
// atomics at all.

// TraceKind identifies what a TraceEvent records.
type TraceKind uint8

// Trace event kinds. The ID and Arg fields are kind-specific.
const (
	// TraceJobEnqueue: a job became ready (ID = task, Iter set). On the
	// real backend the timestamp is the producing job's span end.
	TraceJobEnqueue TraceKind = iota
	// TraceJobSpan: a job executed. TS is the span start, Arg the
	// duration (cycles or ns), ID the task, Worker the core/worker.
	TraceJobSpan
	// TraceJobSkip: a job ran as a zero-cost no-op (cancelled iteration
	// or disabled option). ID = task.
	TraceJobSkip
	// TraceIterLaunch: iteration Iter entered the pipeline.
	TraceIterLaunch
	// TraceIterRetire: iteration Iter retired. Arg = 1 when it counted
	// as processed, 0 when it was cancelled by EOS.
	TraceIterRetire
	// TraceStreamAcquire: iteration Iter acquired stream ID's buffer.
	// Arg = the stream's occupancy after the acquire.
	TraceStreamAcquire
	// TraceStreamRelease: iteration Iter released stream ID's buffer.
	// Arg = the stream's occupancy after the release.
	TraceStreamRelease
	// TraceEventPush: an event was pushed to queue ID. Arg = queue
	// depth after the push.
	TraceEventPush
	// TraceEventDrain: a manager drained queue ID. Arg = events taken.
	TraceEventDrain
	// TraceStealHit: worker Worker stole a job from worker ID's deque.
	TraceStealHit
	// TraceGlobalPop: worker Worker took a job from the global
	// overflow queue.
	TraceGlobalPop
	// TracePark: worker Worker ran out of work and is parking.
	TracePark
	// TraceUnpark: worker Worker resumed after a park.
	TraceUnpark
	// TraceReconfigHalt: manager ID detected a configuration change and
	// halted its subgraph. Iter = the last iteration allowed in.
	TraceReconfigHalt
	// TraceReconfigApply: manager ID's subgraph reached quiescence and
	// the pending options were spliced. Arg = the charged stall cycles
	// (sim backend; 0 on real).
	TraceReconfigApply
	// TraceReconfigResume: manager ID's pipeline fully drained and the
	// parked iterations resumed.
	TraceReconfigResume
	// TraceRetry: task ID's attempt failed and a retry was scheduled
	// under its failure policy. Arg = the backoff (cycles or ns).
	TraceRetry
	// TraceFault: an attempt of task ID failed and was contained by a
	// failure policy. Arg = the attempt number (1-based).
	TraceFault
	// TraceDegrade: a synthetic fault event was emitted to manager ID's
	// queue (policy exhaustion or watchdog overrun). Arg = queue depth
	// after the push.
	TraceDegrade
	// TraceBatch: worker Worker finished a chained run of same-task
	// consecutive iterations (batched dispatch, real backend only). One
	// header per run; Arg = the run length (jobs executed back-to-back).
	// The per-job TraceJobSpan events are emitted as usual.
	TraceBatch
	// TraceTune: the autotuner resized a knob. ID = the task whose
	// replica width changed, or -1 for the stream-FIFO capacity; Iter =
	// the tuning epoch; Arg packs the transition as from<<32|to.
	TraceTune
	// TraceStall: the telemetry watchdog saw Arg consecutive epochs
	// without an iteration retiring. Iter = the oldest unretired
	// iteration.
	TraceStall
)

// String names the kind for exporters and diagnostics.
func (k TraceKind) String() string {
	switch k {
	case TraceJobEnqueue:
		return "enqueue"
	case TraceJobSpan:
		return "job"
	case TraceJobSkip:
		return "skip"
	case TraceIterLaunch:
		return "launch"
	case TraceIterRetire:
		return "retire"
	case TraceStreamAcquire:
		return "stream-acquire"
	case TraceStreamRelease:
		return "stream-release"
	case TraceEventPush:
		return "event-push"
	case TraceEventDrain:
		return "event-drain"
	case TraceStealHit:
		return "steal"
	case TraceGlobalPop:
		return "global-pop"
	case TracePark:
		return "park"
	case TraceUnpark:
		return "unpark"
	case TraceReconfigHalt:
		return "reconfig-halt"
	case TraceReconfigApply:
		return "reconfig-apply"
	case TraceReconfigResume:
		return "reconfig-resume"
	case TraceRetry:
		return "retry"
	case TraceFault:
		return "fault"
	case TraceDegrade:
		return "degrade"
	case TraceBatch:
		return "batch"
	case TraceTune:
		return "tune"
	case TraceStall:
		return "stall"
	}
	return "unknown"
}

// TraceEvent is one recorded event. The struct is 32 bytes so a ring
// buffer of them stays cache-friendly.
type TraceEvent struct {
	// TS is the event time: virtual cycles (sim) or monotonic
	// nanoseconds since run start (real). For TraceJobSpan it is the
	// span start.
	TS int64
	// Arg is kind-specific: span duration, occupancy, queue depth,
	// drained count or stall cycles.
	Arg int64
	// Worker is the display track: the executing core/worker, or -1
	// for engine-level (runtime track) events.
	Worker int32
	// Iter is the iteration the event belongs to, or -1.
	Iter int32
	// ID is kind-specific: task, stream, queue, manager or victim
	// worker index (resolved through TraceMeta's name tables).
	ID int32
	// Kind identifies the event.
	Kind TraceKind
}

// TraceMeta is the run metadata handed to Tracer.Begin: the name
// tables TraceEvent.ID indexes into, the worker count and the clock
// domain.
type TraceMeta struct {
	// Cores is the number of cores (sim) or workers (real). Shards are
	// numbered 0 (engine) and 1..Cores (per worker).
	Cores int
	// Wall is true on the real backend (timestamps are nanoseconds)
	// and false on the sim backend (timestamps are virtual cycles).
	Wall bool
	// Tasks maps task IDs to task names (plan order).
	Tasks []string
	// Streams maps stream indices to stream names (declaration order).
	Streams []string
	// Queues maps queue indices to event-queue names.
	Queues []string
	// Managers maps manager indices to manager names.
	Managers []string
}

// Tracer is the run-time tracing interface. Production runs leave
// Config.Tracer nil; internal/hinch/trace provides the ring-buffer
// flight recorder used by the CLIs and tests.
//
// Begin is called once before any Emit, End once after execution has
// fully stopped. Emit must be safe under the shard discipline
// documented above: calls with the same shard index are totally
// ordered (shard 0 by the engine lock, shard w+1 by worker w's
// goroutine), calls with different shards may be concurrent.
type Tracer interface {
	Begin(meta TraceMeta)
	Emit(shard int, ev TraceEvent)
	End()
}
