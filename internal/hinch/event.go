package hinch

import "sync"

// Event is the asynchronous communication primitive (paper §2 item 3b):
// a small named message, optionally carrying a string argument, sent
// from a component to a manager's event queue (or forwarded between
// queues) at any moment, independent of the current iteration.
type Event struct {
	Name string
	Arg  string
}

// EventQueue is a thread-safe FIFO of events. Managers poll their queue
// at the entrance and exit of their subgraph every iteration.
type EventQueue struct {
	mu sync.Mutex
	q  []Event
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Push appends an event and returns the queue depth after the push
// (recorded by the tracer as the queue's counter track).
func (q *EventQueue) Push(ev Event) int {
	q.mu.Lock()
	q.q = append(q.q, ev)
	n := len(q.q)
	q.mu.Unlock()
	return n
}

// Drain removes and returns all queued events in arrival order.
func (q *EventQueue) Drain() []Event {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.q) == 0 {
		return nil
	}
	out := q.q
	q.q = nil
	return out
}

// Len returns the number of queued events.
func (q *EventQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.q)
}
