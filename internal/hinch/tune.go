package hinch

import (
	"fmt"
	"sync/atomic"

	"xspcl/internal/graph"
	"xspcl/internal/predict"
)

// The feedback autotuner closes the loop the paper's Figure 1 draws
// between the prediction tool and the running application: instead of a
// front-end reading the prediction and re-writing the specification, the
// runtime samples its own occupancy counters at fixed epochs and resizes
// the two data-parallelism knobs it owns while the application runs —
// the replica width of components declared replicate="auto", and the
// live stream-FIFO capacity (Config.StreamCapacity's runtime
// counterpart). On the sim backend epochs are virtual-time boundaries,
// so the whole decision trace is deterministic for a fixed seed; on the
// real backend a ticker goroutine samples under the engine lock.

// TuneKind says which knob a TuneDecision turned.
type TuneKind uint8

const (
	// TuneWidth resized a task's replica width.
	TuneWidth TuneKind = iota
	// TuneDepth resized the live stream-FIFO capacity.
	TuneDepth
)

func (k TuneKind) String() string {
	if k == TuneDepth {
		return "depth"
	}
	return "width"
}

// TuneDecision is one autotuner resize, recorded in decision order.
type TuneDecision struct {
	Epoch int    // tuning epoch the decision was taken in (0-based)
	Task  int    // task ID for width decisions; -1 for depth
	Name  string // task name for width decisions; "streams" for depth
	Kind  TuneKind
	From  int
	To    int
}

func (d TuneDecision) String() string {
	return fmt.Sprintf("epoch %d: %s %s %d->%d", d.Epoch, d.Kind, d.Name, d.From, d.To)
}

// TuneStats summarises autotuner activity for the Report.
type TuneStats struct {
	Epochs      int `json:"epochs"`
	Widen       int `json:"widen"`
	Shrink      int `json:"shrink"`
	DepthRaises int `json:"depth_raises"`
	DepthDrops  int `json:"depth_drops"`
}

// Tuning thresholds. The widen threshold must exceed twice the shrink
// threshold: after a 1→2 widening a saturated task's per-replica
// occupancy halves, so 0.90/2 = 0.45 > 0.40 keeps the tuner from
// immediately undoing its own decision.
const (
	tuneWidenUtil   = 0.90 // per-replica occupancy above which a task wants widening
	tuneShrinkUtil  = 0.40 // per-replica occupancy below which a width shrinks back
	tuneIdleCeiling = 0.95 // no widening once overall core occupancy exceeds this
	tuneHysteresis  = 2    // consecutive same-direction epochs before acting
	tuneCooldown    = 2    // epochs a knob rests after a change
	tuneDepthCalm   = 3    // zero-backpressure epochs before the FIFO capacity drops
)

// tuner holds the autotuner's sampling state. The busy counters are
// written atomically by executing workers; everything else is touched
// only inside tuneEpoch (single sim goroutine, or under e.mu on the
// real backend).
type tuner struct {
	epoch  int64 // epoch length: virtual cycles (sim) or wall ns (real)
	nextAt int64 // sim backend: virtual time of the next epoch boundary

	auto []int   // task IDs declared replicate="auto", ascending
	cap  []int32 // width cap per task ID (meaningful for auto tasks)

	busy  []atomic.Int64 // execution time charged per task since run start
	last  []int64        // busy snapshot at the previous epoch boundary
	delta []int64        // per-epoch scratch: busy delta this epoch

	up   []int // consecutive epochs a task has wanted widening
	down []int // consecutive epochs a task has wanted shrinking
	cool []int // epochs a task's width still rests after a change

	bufWaits  int // backpressure parks since the last epoch; guarded by mu
	bufHW     int // high-water of bufActive since the last epoch; guarded by mu
	depthCalm int // consecutive epochs without backpressure
	depthCool int // epochs the depth knob still rests after a change

	stats TuneStats
	log   []TuneDecision

	// pub is the tuner state App.Snapshot reads mid-run: stats plus the
	// tail of the decision log, republished as a fresh immutable value
	// at the end of every epoch that changed something. stats and log
	// themselves are engine-side only (sim goroutine / under mu).
	pub atomic.Pointer[TuneView]
}

// TuneView is a point-in-time copy of the autotuner's public state,
// published for mid-run snapshots.
type TuneView struct {
	Stats TuneStats      `json:"stats"`
	Tail  []TuneDecision `json:"tail"` // most recent decisions, oldest first
}

// tuneTailLen bounds the published decision-log tail.
const tuneTailLen = 32

// newTuner builds the tuner for an engine whose Config.Autotune is set.
// Widths are capped statically at min(PipelineDepth, Cores[,
// MaxReplicaWidth]) — the pipeline window bounds how many iterations of
// a task can exist, and widening past the core count only adds memory
// pressure — and, when the prediction model covers every class, at the
// model's useful width: a replica width beyond
// ceil(taskCost / max(Work/Cores, CriticalPath/PipelineDepth)) cannot
// move the steady-state bound, so the tuner never explores it.
func newTuner(e *engine) *tuner {
	a := e.app
	n := len(a.plan.Tasks)
	tu := &tuner{
		busy:  make([]atomic.Int64, n),
		last:  make([]int64, n),
		delta: make([]int64, n),
		up:    make([]int, n),
		down:  make([]int, n),
		cool:  make([]int, n),
		cap:   make([]int32, n),
	}
	if a.cfg.Backend == BackendSim {
		tu.epoch = a.cfg.TuneEpochCycles
		tu.nextAt = tu.epoch
	} else {
		tu.epoch = int64(a.cfg.TuneEpochWall)
	}
	capW := a.cfg.PipelineDepth
	if a.cfg.Cores < capW {
		capW = a.cfg.Cores
	}
	if m := a.cfg.MaxReplicaWidth; m > 0 && m < capW {
		capW = m
	}
	for _, t := range a.plan.Tasks {
		if t.Role != graph.RoleComponent {
			continue
		}
		rep, err := graph.TaskReplicate(t)
		if err != nil || !rep.Auto {
			continue
		}
		tu.auto = append(tu.auto, t.ID)
		tu.cap[t.ID] = int32(capW)
	}
	if len(tu.auto) > 0 {
		tu.consultModel(e)
	}
	return tu
}

// consultModel tightens the per-task width caps using the analytic cost
// model (internal/predict). Best effort: programs with classes outside
// the model's component library keep the static caps.
func (tu *tuner) consultModel(e *engine) {
	a := e.app
	model := predict.NewDefaultModel()
	costs := make([]int64, len(a.plan.Tasks))
	for _, t := range a.plan.Tasks {
		c, err := model.TaskCycles(a.prog, t)
		if err != nil {
			return
		}
		costs[t.ID] = c
	}
	cost := func(t *graph.Task) int64 { return costs[t.ID] }
	floor := a.plan.TotalWork(cost) / int64(a.cfg.Cores)
	if cp := a.plan.CriticalPath(cost) / int64(a.cfg.PipelineDepth); cp > floor {
		floor = cp
	}
	if floor <= 0 {
		return
	}
	for _, id := range tu.auto {
		useful := int32((costs[id] + floor - 1) / floor)
		if useful < 1 {
			useful = 1
		}
		if useful < tu.cap[id] {
			tu.cap[id] = useful
		}
	}
}

// tuneEpoch runs one decision round: sample the per-task occupancy
// accumulated since the last epoch, widen saturated auto tasks / shrink
// idle ones (with hysteresis and a post-change cooldown), and adjust the
// stream-FIFO capacity from the backpressure counters. Deterministic on
// the sim backend: it runs on the sim goroutine at virtual-time
// boundaries and sweeps tasks in ID order. Must be called with mu held
// on the real backend.
//
//hinch:locked
func (e *engine) tuneEpoch() {
	tu := e.tu
	epoch := tu.stats.Epochs
	tu.stats.Epochs++
	var total int64
	for i := range tu.busy {
		b := tu.busy[i].Load()
		tu.delta[i] = b - tu.last[i]
		tu.last[i] = b
		total += tu.delta[i]
	}
	totalUtil := float64(total) / float64(tu.epoch*int64(e.app.cfg.Cores))
	for _, id := range tu.auto {
		if tu.cool[id] > 0 {
			tu.cool[id]--
			continue
		}
		w := e.widths[id].Load()
		util := float64(tu.delta[id]) / float64(tu.epoch*int64(w))
		switch {
		case util >= tuneWidenUtil && totalUtil < tuneIdleCeiling && w < tu.cap[id]:
			tu.down[id] = 0
			tu.up[id]++
			if tu.up[id] >= tuneHysteresis {
				tu.up[id] = 0
				tu.cool[id] = tuneCooldown
				e.resizeWidth(epoch, id, int(w), int(w)+1)
			}
		case util <= tuneShrinkUtil && w > 1:
			tu.up[id] = 0
			tu.down[id]++
			if tu.down[id] >= tuneHysteresis {
				tu.down[id] = 0
				tu.cool[id] = tuneCooldown
				e.resizeWidth(epoch, id, int(w), int(w)-1)
			}
		default:
			tu.up[id], tu.down[id] = 0, 0
		}
	}
	bufCap := int(e.bufCap.Load())
	switch {
	case tu.depthCool > 0:
		tu.depthCool--
	case tu.bufWaits > 0 && bufCap < e.app.cfg.PipelineDepth:
		tu.depthCalm = 0
		tu.depthCool = tuneCooldown
		e.resizeDepth(epoch, bufCap, bufCap+1)
	case tu.bufWaits == 0 && bufCap > 1 && tu.bufHW < bufCap:
		tu.depthCalm++
		if tu.depthCalm >= tuneDepthCalm {
			tu.depthCalm = 0
			tu.depthCool = tuneCooldown
			e.resizeDepth(epoch, bufCap, bufCap-1)
		}
	default:
		tu.depthCalm = 0
	}
	tu.bufWaits = 0
	tu.bufHW = 0
	tu.publish()
}

// publish republishes the tuner's snapshot view. Engine-side (sim
// goroutine or mu held), once per epoch — the copy is off the hot path.
//
//hinch:locked
func (tu *tuner) publish() {
	v := &TuneView{Stats: tu.stats}
	tail := tu.log
	if len(tail) > tuneTailLen {
		tail = tail[len(tail)-tuneTailLen:]
	}
	v.Tail = append([]TuneDecision(nil), tail...)
	tu.pub.Store(v)
}

// resizeWidth applies one width decision: record it, trace it, and
// resize the live cross-iteration dependency distance. Must be called
// with mu held on the real backend, via tuneEpoch.
//
//hinch:locked
func (e *engine) resizeWidth(epoch, id, from, to int) {
	d := TuneDecision{Epoch: epoch, Task: id, Name: e.app.plan.Tasks[id].Name, Kind: TuneWidth, From: from, To: to}
	e.tu.log = append(e.tu.log, d)
	if to > from {
		e.tu.stats.Widen++
	} else {
		e.tu.stats.Shrink++
	}
	e.traceTune(d)
	e.setWidth(id, to)
}

// resizeDepth applies one stream-FIFO capacity decision. Must be called
// with mu held on the real backend, via tuneEpoch.
//
//hinch:locked
func (e *engine) resizeDepth(epoch, from, to int) {
	d := TuneDecision{Epoch: epoch, Task: -1, Name: "streams", Kind: TuneDepth, From: from, To: to}
	e.tu.log = append(e.tu.log, d)
	if to > from {
		e.tu.stats.DepthRaises++
	} else {
		e.tu.stats.DepthDrops++
	}
	e.traceTune(d)
	e.setBufCap(to)
}

// traceTune emits a TraceTune instant for one decision. Arg packs the
// transition as from<<32|to; Iter carries the epoch; ID the task (-1
// for the depth knob). Must be called with mu held on the real backend.
//
//hinch:locked
func (e *engine) traceTune(d TuneDecision) {
	if e.tr == nil {
		return
	}
	e.tr.Emit(0, TraceEvent{
		TS: e.traceTS(nil), Kind: TraceTune,
		Worker: -1, Iter: int32(d.Epoch), ID: int32(d.Task),
		Arg: int64(d.From)<<32 | int64(d.To),
	})
}

// setWidth publishes a new replica width for task id, then sweeps the
// in-flight window for iterations whose cross-iteration dependency the
// new width already satisfies. The sweep makes resizing sound against
// concurrent completions: a completer of iteration k-width either loads
// the new width after its done flag is set — and releases k itself — or
// its done flag was published before the sweep's read, in which case
// the sweep claims the release; crossClaim's CAS deduplicates when both
// do. Shrinks are covered by the same argument: an iteration whose
// old-width completer already fired long ago has its new back-iteration
// long done, so the sweep claims it. Must be called with mu held on the
// real backend.
//
//hinch:locked
func (e *engine) setWidth(id, width int) {
	e.widths[id].Store(int32(width))
	for k := e.retireNext; k < e.nextLaunch; k++ {
		it := e.iterAt(k)
		if it == nil {
			continue
		}
		back := e.iterAt(k - width)
		if back == nil || back.done[id].Load() {
			if it.crossClaim[id].CompareAndSwap(false, true) {
				e.release(k, it, id, nil)
			}
		}
	}
}

// setBufCap publishes a new live stream-FIFO capacity. On a raise the
// backpressured jobs re-enter the queue immediately (the two backing
// arrays rotate, as in retire, so the churn does not allocate); on a
// drop the capacity simply stops admitting new iterations until enough
// holders retire. Must be called with mu held on the real backend.
//
//hinch:locked
func (e *engine) setBufCap(c int) {
	raise := c > int(e.bufCap.Load())
	e.bufCap.Store(int32(c))
	if !raise || len(e.bufParked) == 0 {
		return
	}
	parked := e.bufParked
	e.bufParked = e.bufSpare[:0]
	for _, pj := range parked {
		e.enqueue(nil, pj)
	}
	e.bufSpare = parked[:0]
}
