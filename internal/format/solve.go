package format

import (
	"fmt"
	"sort"
	"strconv"
)

// The constraint solver. Callers (graph.SolveFormats) allocate solver
// variables for every stream slot and every signature variable of every
// component instance, add equations between instantiated expressions,
// and Solve computes the most general substitution by unification with
// arithmetic propagation:
//
//  1. A fixpoint loop processes equations whose shapes permit an exact
//     step — ground/ground checks, variable bindings, variable unions,
//     and '*' inversions (exact division).
//  2. When the loop stalls, one division equation is discharged: a '/'
//     with known operands binds its result to the canonical
//     evenDown(floor(a/k)), and a '/' with a known dividend and result
//     scans for the unique divisor satisfying the downscale-fit window
//     (see the package comment). Then the fixpoint loop resumes.
//
// Every binding and union records the equation that caused it, merged
// per equivalence class, so a conflict can narrate the chain of
// constraints that produced both values — the analyzer renders it like
// the deadlock pass's wait cycles.

// X is an instantiated expression over solver variables.
type X struct {
	kind Kind
	atom string
	n    int
	id   int // Var: solver variable id
	op   byte
	l, r *X
}

// IntX returns a ground integer expression.
func IntX(n int) *X { return &X{kind: Int, n: n} }

// AtomX returns a ground atom expression.
func AtomX(a string) *X { return &X{kind: Atom, atom: a} }

// OpX returns a binary arithmetic expression.
func OpX(op byte, l, r *X) *X { return &X{kind: OpExpr, op: op, l: l, r: r} }

// String renders the expression for diagnostics.
func (x *X) String() string {
	switch x.kind {
	case Atom:
		return x.atom
	case Int:
		return strconv.Itoa(x.n)
	case Var:
		return fmt.Sprintf("_%d", x.id)
	case OpExpr:
		return x.l.String() + string(x.op) + x.r.String()
	}
	return "?"
}

// value is a ground scalar: an integer or an atom.
type value struct {
	isInt bool
	n     int
	atom  string
}

func (v value) String() string {
	if v.isInt {
		return strconv.Itoa(v.n)
	}
	return v.atom
}

func (v value) equal(o value) bool { return v.isInt == o.isInt && v.n == o.n && v.atom == o.atom }

// equation is one constraint a = b.
type equation struct {
	a, b   *X
	reason string // narrative line for provenance chains
	stream string // attribution for conflicts ("" when not port-level)
	slot   string
	done   bool
}

// System accumulates variables and equations.
type System struct {
	names   []string // variable debug names
	parent  []int    // union-find
	val     []*value // on roots: bound ground value
	touched [][]int  // on roots: equation indices that shaped this class
	eqs     []*equation
}

// NewSystem returns an empty constraint system.
func NewSystem() *System { return &System{} }

// NewVar allocates a solver variable. The name is only used in
// diagnostics.
func (s *System) NewVar(name string) int {
	id := len(s.parent)
	s.parent = append(s.parent, id)
	s.names = append(s.names, name)
	s.val = append(s.val, nil)
	s.touched = append(s.touched, nil)
	return id
}

// V returns the expression referencing variable id.
func (s *System) V(id int) *X { return &X{kind: Var, id: id} }

// Equate adds the constraint a = b. The reason is one narrative line
// ("stream \"x\" declares width 720"); stream/slot attribute a conflict
// on this equation to a stream slot.
func (s *System) Equate(a, b *X, reason, stream, slot string) {
	s.eqs = append(s.eqs, &equation{a: a, b: b, reason: reason, stream: stream, slot: slot})
}

func (s *System) find(v int) int {
	for s.parent[v] != v {
		s.parent[v] = s.parent[s.parent[v]]
		v = s.parent[v]
	}
	return v
}

// Conflict is one unsatisfiable constraint.
type Conflict struct {
	Stream string   // offending stream ("" when unattributed)
	Slot   string   // offending slot name
	Detail string   // e.g. `width resolves to both 180 and 360`
	Chain  []string // narrative of the constraints that collided
}

// Result is the solved substitution.
type Result struct {
	Conflicts []Conflict
	sys       *System
}

// Int returns the solved integer value of a variable.
func (r *Result) Int(v int) (int, bool) {
	root := r.sys.find(v)
	if val := r.sys.val[root]; val != nil && val.isInt {
		return val.n, true
	}
	return 0, false
}

// Value returns the solved ground value of a variable, rendered.
func (r *Result) Value(v int) (string, bool) {
	root := r.sys.find(v)
	if val := r.sys.val[root]; val != nil {
		return val.String(), true
	}
	return "", false
}

// evenDown rounds down to the nearest even number.
func evenDown(n int) int { return n &^ 1 }

// fitDiv reports whether c is an acceptable result of the downscale
// division a/k: floor(a/k)-1 <= c <= floor(a/k), c >= 0.
func fitDiv(a, k, c int) bool {
	if k <= 0 || c < 0 {
		return false
	}
	q := a / k
	return c == q || c == q-1
}

// canonDiv is the canonical value produced through '/': the even-aligned
// box-downscale output extent.
func canonDiv(a, k int) int { return evenDown(a / k) }

// subst resolves x against the current substitution: bound variables
// are replaced by their values, and an operand that is itself a fully
// ground operation folds to its canonical value (exact for '*',
// evenDown(floor) for '/'; the downscale-fit slack applies only at the
// equation's top level).
func (s *System) subst(x *X) *X {
	switch x.kind {
	case Var:
		root := s.find(x.id)
		if v := s.val[root]; v != nil {
			if v.isInt {
				return IntX(v.n)
			}
			return AtomX(v.atom)
		}
		if root != x.id {
			return &X{kind: Var, id: root}
		}
		return x
	case OpExpr:
		l, r := s.subst(x.l), s.subst(x.r)
		if l.kind == OpExpr {
			l = foldOp(l)
		}
		if r.kind == OpExpr {
			r = foldOp(r)
		}
		return &X{kind: OpExpr, op: x.op, l: l, r: r}
	}
	return x
}

// foldOp folds a ground operation to its canonical value; non-ground
// or invalid operations pass through.
func foldOp(x *X) *X {
	if x.kind != OpExpr || x.l.kind != Int || x.r.kind != Int {
		return x
	}
	switch x.op {
	case '*':
		return IntX(x.l.n * x.r.n)
	case '/':
		if x.r.n <= 0 {
			return x
		}
		return IntX(canonDiv(x.l.n, x.r.n))
	}
	return x
}

// ground extracts a ground scalar from a substituted expression.
func ground(x *X) (value, bool) {
	switch x.kind {
	case Int:
		return value{isInt: true, n: x.n}, true
	case Atom:
		return value{atom: x.atom}, true
	}
	return value{}, false
}

// vars appends the variable ids occurring in x.
func vars(x *X, out []int) []int {
	switch x.kind {
	case Var:
		return append(out, x.id)
	case OpExpr:
		return vars(x.r, vars(x.l, out))
	}
	return out
}

// Solve runs the fixpoint and returns the substitution with any
// conflicts. The system must not be mutated afterwards.
func (s *System) Solve() *Result {
	res := &Result{sys: s}
	for {
		progress := false
		for i, e := range s.eqs {
			if e.done {
				continue
			}
			switch s.step(i, e, res, false) {
			case stepProgress:
				progress = true
			case stepConflict:
				e.done = true
				progress = true
			}
		}
		if progress {
			continue
		}
		// Stalled: discharge one division equation canonically.
		for i, e := range s.eqs {
			if e.done {
				continue
			}
			if st := s.step(i, e, res, true); st != stepDefer {
				progress = true
				break
			}
		}
		if !progress {
			return res
		}
	}
}

type stepResult int

const (
	stepDefer stepResult = iota
	stepProgress
	stepConflict
)

// step attempts one equation. In stall mode, division equations may
// bind canonical values (see Solve).
func (s *System) step(idx int, e *equation, res *Result, stall bool) stepResult {
	a, b := s.subst(e.a), s.subst(e.b)
	// Normalise: an operation, else a ground scalar, goes left.
	if b.kind == OpExpr && a.kind != OpExpr {
		a, b = b, a
	} else if a.kind == Var && b.kind != Var {
		a, b = b, a
	}
	ga, okA := ground(a)
	gb, okB := ground(b)
	switch {
	case okA && okB:
		e.done = true
		if !ga.equal(gb) {
			s.conflict(idx, e, res, ga, gb)
			return stepConflict
		}
		return stepProgress
	case okA && b.kind == Var:
		e.done = true
		return s.bind(idx, e, res, b.id, ga)
	case a.kind == Var && b.kind == Var:
		e.done = true
		return s.union(idx, e, res, a.id, b.id)
	case a.kind == OpExpr:
		return s.stepOp(idx, e, res, a, b, stall)
	}
	return stepDefer
}

// stepOp handles op = other, where other is ground, a variable, or
// another op.
func (s *System) stepOp(idx int, e *equation, res *Result, op, other *X, stall bool) stepResult {
	lv, okL := ground(op.l)
	rv, okR := ground(op.r)
	if okL && !lv.isInt || okR && !rv.isInt {
		e.done = true
		s.conflictDetail(idx, e, res, fmt.Sprintf("layout term %s where a number is required", op))
		return stepConflict
	}
	ov, okO := ground(other)
	if okO && !ov.isInt {
		e.done = true
		s.conflictDetail(idx, e, res, fmt.Sprintf("layout term %s where a number is required", ov))
		return stepConflict
	}

	if okL && okR {
		// Both operands known.
		if op.op == '/' && rv.n <= 0 {
			e.done = true
			s.conflictDetail(idx, e, res, fmt.Sprintf("division by %d", rv.n))
			return stepConflict
		}
		if okO {
			// Fully ground: check.
			e.done = true
			ok := false
			if op.op == '*' {
				ok = lv.n*rv.n == ov.n
			} else {
				ok = fitDiv(lv.n, rv.n, ov.n)
			}
			if !ok {
				s.conflict(idx, e, res, value{isInt: true, n: eval(op.op, lv.n, rv.n)}, ov)
				return stepConflict
			}
			return stepProgress
		}
		if other.kind == Var {
			if op.op == '*' {
				e.done = true
				return s.bind(idx, e, res, other.id, value{isInt: true, n: lv.n * rv.n})
			}
			// '/' forward binding only once exact propagation stalls, so
			// a declared value gets the first word and the fit window
			// applies as a check instead.
			if stall {
				e.done = true
				return s.bind(idx, e, res, other.id, value{isInt: true, n: canonDiv(lv.n, rv.n)})
			}
		}
		return stepDefer
	}

	if okO {
		// One operand unknown, result known: invert.
		if op.op == '*' {
			// x*y = c with one of x,y known: exact division.
			var known value
			var unknown *X
			if okL {
				known, unknown = lv, op.r
			} else if okR {
				known, unknown = rv, op.l
			} else {
				return stepDefer
			}
			if unknown.kind != Var {
				return stepDefer
			}
			e.done = true
			if known.n == 0 || ov.n%known.n != 0 {
				s.conflictDetail(idx, e, res, fmt.Sprintf("%d does not divide %d", known.n, ov.n))
				return stepConflict
			}
			return s.bind(idx, e, res, unknown.id, value{isInt: true, n: ov.n / known.n})
		}
		// a/k = c with k unknown: scan for the divisors whose downscale
		// window contains c; bind only a unique solution (stall phase).
		if op.op == '/' && okL && op.r.kind == Var && stall {
			var candidates []int
			for k := 1; k <= lv.n; k++ {
				if fitDiv(lv.n, k, ov.n) {
					candidates = append(candidates, k)
				}
			}
			switch len(candidates) {
			case 0:
				e.done = true
				s.conflictDetail(idx, e, res, fmt.Sprintf("no integer factor scales %d down to %d", lv.n, ov.n))
				return stepConflict
			case 1:
				e.done = true
				return s.bind(idx, e, res, op.r.id, value{isInt: true, n: candidates[0]})
			}
			// Ambiguous: leave under-constrained for another equation
			// (e.g. the height) to settle.
			return stepDefer
		}
	}
	return stepDefer
}

func eval(op byte, a, b int) int {
	if op == '*' {
		return a * b
	}
	return a / b
}

// bind assigns a ground value to a variable's class.
func (s *System) bind(idx int, e *equation, res *Result, v int, val value) stepResult {
	root := s.find(v)
	if cur := s.val[root]; cur != nil {
		if cur.equal(val) {
			return stepProgress
		}
		s.conflict(idx, e, res, *cur, val)
		return stepConflict
	}
	s.val[root] = &val
	s.touched[root] = append(s.touched[root], idx)
	return stepProgress
}

// union merges two variables' classes.
func (s *System) union(idx int, e *equation, res *Result, a, b int) stepResult {
	ra, rb := s.find(a), s.find(b)
	if ra == rb {
		return stepProgress
	}
	va, vb := s.val[ra], s.val[rb]
	if va != nil && vb != nil && !va.equal(*vb) {
		s.conflict(idx, e, res, *va, *vb)
		return stepConflict
	}
	s.parent[rb] = ra
	if va == nil {
		s.val[ra] = vb
	}
	s.touched[ra] = append(s.touched[ra], s.touched[rb]...)
	s.touched[ra] = append(s.touched[ra], idx)
	s.touched[rb] = nil
	return stepProgress
}

// conflict records an unsatisfiable equation that produced two values.
func (s *System) conflict(idx int, e *equation, res *Result, got, want value) {
	slot := e.slot
	if slot == "" {
		slot = "format"
	}
	s.conflictDetail(idx, e, res, fmt.Sprintf("%s resolves to both %s and %s", slot, got, want))
}

// conflictDetail records a conflict with an explicit detail line and
// assembles the provenance chain: the transitive closure of equations
// that shaped the equivalence classes feeding this one, rendered in
// construction order (stream declarations were added first, so the
// narrative reads declarations → constraints → collision).
func (s *System) conflictDetail(idx int, e *equation, res *Result, detail string) {
	seen := map[int]bool{idx: true}
	queue := []int{idx}
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, v := range vars(s.eqs[i].b, vars(s.eqs[i].a, nil)) {
			for _, t := range s.touched[s.find(v)] {
				if !seen[t] {
					seen[t] = true
					queue = append(queue, t)
				}
			}
		}
	}
	order := make([]int, 0, len(seen))
	for i := range seen {
		order = append(order, i)
	}
	sort.Ints(order)
	chain := make([]string, 0, len(order))
	dedup := map[string]bool{}
	for _, i := range order {
		r := s.eqs[i].reason
		if r != "" && !dedup[r] {
			dedup[r] = true
			chain = append(chain, r)
		}
	}
	res.Conflicts = append(res.Conflicts, Conflict{
		Stream: e.stream, Slot: e.slot, Detail: detail, Chain: chain,
	})
}
