package format

import (
	"strings"
	"testing"
)

func TestParseTerm(t *testing.T) {
	tests := []struct {
		src  string
		want string // expected String(); "" means parse error expected
	}{
		{"yuv420(720,576)", "yuv420(720,576)"},
		{"yuv420( 720 , 576 )", "yuv420(720,576)"},
		{"yuv420(720,576,16)", "yuv420(720,576,16)"},
		{"packet", "packet"},
		{"F", "F"},
		{"L(W,H)", "L(W,H)"},
		{"L(W/K,H/K)", "L(W/K,H/K)"},
		{"L(W/2*3,H)", "L(W/2*3,H)"},
		{"yuv420(W,576)", "yuv420(W,576)"},
		// Errors.
		{"", ""},
		{"yuv420(720)", ""},
		{"yuv420(720,)", ""},
		{"yuv420(720,576", ""},
		{"yuv420(720,576) extra", ""},
		{"yuv420(gray,576)", ""}, // atom in numeric position
		{"yuv420(720,576,16,9)", ""},
		{"(720,576)", ""},
		{"yuv420(-1,576)", ""},
		{"yuv420(720,576))", ""},
	}
	for _, tt := range tests {
		got, err := ParseTerm(tt.src)
		if tt.want == "" {
			if err == nil {
				t.Errorf("ParseTerm(%q) = %q, want error", tt.src, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", tt.src, err)
			continue
		}
		if got.String() != tt.want {
			t.Errorf("ParseTerm(%q).String() = %q, want %q", tt.src, got, tt.want)
		}
	}
}

func TestParseTermGround(t *testing.T) {
	for src, want := range map[string]bool{
		"yuv420(720,576)": true,
		"packet":          true,
		"F":               false,
		"L(W,H)":          false,
		"yuv420(W,576)":   false,
	} {
		tm, err := ParseTerm(src)
		if err != nil {
			t.Fatalf("ParseTerm(%q): %v", src, err)
		}
		if tm.Ground() != want {
			t.Errorf("ParseTerm(%q).Ground() = %v, want %v", src, tm.Ground(), want)
		}
	}
}

func TestParseSignature(t *testing.T) {
	sig, err := ParseSignature("in: L(W,H); out: L(W/K,H/K); where K=factor")
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Ports) != 2 || sig.Ports[0].Port != "in" || sig.Ports[1].Port != "out" {
		t.Fatalf("ports = %+v", sig.Ports)
	}
	if len(sig.Binds) != 1 || sig.Binds[0].Var != "K" || sig.Binds[0].Param != "factor" {
		t.Fatalf("binds = %+v", sig.Binds)
	}
	if sig.Port("out").String() != "L(W/K,H/K)" {
		t.Fatalf("out term = %s", sig.Port("out"))
	}
	if sig.Port("missing") != nil {
		t.Fatal("Port(missing) should be nil")
	}

	bad := []string{
		"",
		"in L(W,H)",                  // missing colon
		"in: L(W,H);",                // trailing semicolon
		"in: L(W,H); in: F",          // duplicate port
		"In: F",                      // uppercase port
		"in: F; where k=factor",      // lowercase bind var
		"in: F; where K=Factor",      // uppercase param
		"in: F; where K=f, K=g",      // duplicate bind
		"in: F; where K=factor junk", // trailing input
		"where K=factor",             // no ports
	}
	for _, src := range bad {
		if _, err := ParseSignature(src); err == nil {
			t.Errorf("ParseSignature(%q) should fail", src)
		}
	}
}

// solveTerms is a test helper: a tiny network of one stream slot set
// equated against declared values and component constraints.
func TestSolveGroundConflict(t *testing.T) {
	s := NewSystem()
	w := s.NewVar("stream x.width")
	s.Equate(s.V(w), IntX(720), `stream "x" declares width 720`, "x", "width")
	s.Equate(s.V(w), IntX(704), `component "c" constrains in.width = 704`, "x", "width")
	res := s.Solve()
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	c := res.Conflicts[0]
	if c.Stream != "x" || c.Slot != "width" {
		t.Fatalf("conflict attribution = %+v", c)
	}
	if !strings.Contains(c.Detail, "720") || !strings.Contains(c.Detail, "704") {
		t.Fatalf("detail = %q", c.Detail)
	}
	if len(c.Chain) != 2 {
		t.Fatalf("chain = %q", c.Chain)
	}
}

func TestSolveUnionPropagation(t *testing.T) {
	s := NewSystem()
	a := s.NewVar("a")
	b := s.NewVar("b")
	c := s.NewVar("c")
	s.Equate(s.V(a), s.V(b), "a=b", "", "")
	s.Equate(s.V(b), s.V(c), "b=c", "", "")
	s.Equate(s.V(c), AtomX("yuv420"), "c=yuv420", "", "")
	res := s.Solve()
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %+v", res.Conflicts)
	}
	for _, v := range []int{a, b, c} {
		if got, ok := res.Value(v); !ok || got != "yuv420" {
			t.Fatalf("var %d = %q ok=%v", v, got, ok)
		}
	}
}

func TestSolveDownscaleChain(t *testing.T) {
	// vid 720x576 --downscale(K=4)--> out: out dims bind canonically.
	s := NewSystem()
	w := s.NewVar("vid.width")
	ow := s.NewVar("out.width")
	k := s.NewVar("K")
	s.Equate(s.V(w), IntX(720), "vid width 720", "vid", "width")
	s.Equate(s.V(k), IntX(4), "factor 4", "", "")
	s.Equate(s.V(ow), OpX('/', s.V(w), s.V(k)), "out.width = W/K", "out", "width")
	res := s.Solve()
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %+v", res.Conflicts)
	}
	if got, _ := res.Int(ow); got != 180 {
		t.Fatalf("out.width = %d, want 180", got)
	}
}

func TestSolveDownscaleFitWindow(t *testing.T) {
	// JPiP geometry: 576/16 = 36 exactly, but 720/16 = 45 while the
	// even-aligned downscaler produces 44. Declared 44 must be accepted
	// and must win over the canonical forward value.
	s := NewSystem()
	h := s.NewVar("vid.height")
	oh := s.NewVar("small.height")
	s.Equate(s.V(h), IntX(720), "vid height 720", "vid", "height")
	s.Equate(s.V(oh), IntX(44), "small height 44", "small", "height")
	s.Equate(s.V(oh), OpX('/', s.V(h), IntX(16)), "small.height = H/16", "small", "height")
	res := s.Solve()
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %+v", res.Conflicts)
	}
	if got, _ := res.Int(oh); got != 44 {
		t.Fatalf("small.height = %d, want 44", got)
	}

	// 43 is outside the window [44, 45]: conflict.
	s2 := NewSystem()
	h2 := s2.NewVar("vid.height")
	oh2 := s2.NewVar("small.height")
	s2.Equate(s2.V(h2), IntX(720), "vid height 720", "vid", "height")
	s2.Equate(s2.V(oh2), IntX(43), "small height 43", "small", "height")
	s2.Equate(s2.V(oh2), OpX('/', s2.V(h2), IntX(16)), "small.height = H/16", "small", "height")
	if res := s2.Solve(); len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
}

func TestSolveDivisorInference(t *testing.T) {
	// 720 -> 360: K must be 2 (unique divisor in the fit window).
	s := NewSystem()
	w := s.NewVar("vid.width")
	ow := s.NewVar("half.width")
	k := s.NewVar("K")
	s.Equate(s.V(w), IntX(720), "vid width 720", "vid", "width")
	s.Equate(s.V(ow), IntX(360), "half width 360", "half", "width")
	s.Equate(s.V(ow), OpX('/', s.V(w), s.V(k)), "half.width = W/K", "half", "width")
	res := s.Solve()
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %+v", res.Conflicts)
	}
	if got, _ := res.Int(k); got != 2 {
		t.Fatalf("K = %d, want 2", got)
	}
}

func TestSolveDivisorInferenceImpossible(t *testing.T) {
	// No integer factor scales 100 down to 90.
	s := NewSystem()
	w := s.NewVar("w")
	ow := s.NewVar("ow")
	k := s.NewVar("K")
	s.Equate(s.V(w), IntX(100), "width 100", "a", "width")
	s.Equate(s.V(ow), IntX(90), "width 90", "b", "width")
	s.Equate(s.V(ow), OpX('/', s.V(w), s.V(k)), "b.width = W/K", "b", "width")
	res := s.Solve()
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	if !strings.Contains(res.Conflicts[0].Detail, "no integer factor") {
		t.Fatalf("detail = %q", res.Conflicts[0].Detail)
	}
}

func TestSolveMulInversion(t *testing.T) {
	// x*3 = 12 binds x=4; x*5 = 12 conflicts (non-divisible).
	s := NewSystem()
	x := s.NewVar("x")
	s.Equate(OpX('*', s.V(x), IntX(3)), IntX(12), "x*3=12", "", "")
	res := s.Solve()
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %+v", res.Conflicts)
	}
	if got, _ := res.Int(x); got != 4 {
		t.Fatalf("x = %d, want 4", got)
	}

	s2 := NewSystem()
	y := s2.NewVar("y")
	s2.Equate(OpX('*', s2.V(y), IntX(5)), IntX(12), "y*5=12", "", "")
	if res := s2.Solve(); len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
}

func TestSolveAtomInNumericPosition(t *testing.T) {
	s := NewSystem()
	w := s.NewVar("w")
	s.Equate(s.V(w), AtomX("gray"), "w = gray", "x", "width")
	s.Equate(OpX('/', s.V(w), IntX(2)), IntX(10), "w/2 = 10", "x", "width")
	res := s.Solve()
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	if !strings.Contains(res.Conflicts[0].Detail, "layout term") {
		t.Fatalf("detail = %q", res.Conflicts[0].Detail)
	}
}

func TestSolveDivisionByZero(t *testing.T) {
	s := NewSystem()
	w := s.NewVar("w")
	s.Equate(s.V(w), IntX(720), "w=720", "", "")
	s.Equate(OpX('/', s.V(w), IntX(0)), IntX(10), "w/0", "", "")
	res := s.Solve()
	if len(res.Conflicts) != 1 || !strings.Contains(res.Conflicts[0].Detail, "division by 0") {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
}

func TestSolveChainTransitive(t *testing.T) {
	// The conflict chain must include the declaration that grounded a
	// *different* equivalence class feeding the colliding equation.
	s := NewSystem()
	w := s.NewVar("vid.width")
	k := s.NewVar("K")
	ow := s.NewVar("out.width")
	s.Equate(s.V(w), IntX(720), `stream "vid" declares width 720`, "vid", "width")
	s.Equate(s.V(k), IntX(4), `component "down" sets K = 4 (parameter factor)`, "", "")
	s.Equate(s.V(ow), IntX(360), `stream "out" declares width 360`, "out", "width")
	s.Equate(s.V(ow), OpX('/', s.V(w), s.V(k)), `component "down" constrains out.width = W/K`, "out", "width")
	res := s.Solve()
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %+v", res.Conflicts)
	}
	chain := strings.Join(res.Conflicts[0].Chain, "\n")
	for _, want := range []string{"declares width 720", "K = 4", "declares width 360", "out.width = W/K"} {
		if !strings.Contains(chain, want) {
			t.Errorf("chain missing %q:\n%s", want, chain)
		}
	}
	// Construction order: declarations precede the colliding constraint.
	if !strings.HasPrefix(res.Conflicts[0].Chain[0], `stream "vid"`) {
		t.Errorf("chain[0] = %q, want the vid declaration first", res.Conflicts[0].Chain[0])
	}
}

func TestSolveUnderConstrained(t *testing.T) {
	s := NewSystem()
	w := s.NewVar("w")
	k := s.NewVar("K")
	s.Equate(s.V(w), OpX('/', IntX(720), s.V(k)), "w = 720/K", "", "")
	res := s.Solve()
	if len(res.Conflicts) != 0 {
		t.Fatalf("conflicts: %+v", res.Conflicts)
	}
	if _, ok := res.Int(w); ok {
		t.Fatal("w should stay unresolved with K free")
	}
	if _, ok := res.Int(k); ok {
		t.Fatal("K should stay unresolved")
	}
}

func FuzzParseTerm(f *testing.F) {
	for _, seed := range []string{
		"yuv420(720,576)", "packet", "F", "L(W,H)", "L(W/K,H/K)",
		"yuv420(720,576,16)", "x(", "a(1,", "(", "720", "L(W*2/3,H)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		tm, err := ParseTerm(src)
		if err != nil {
			return
		}
		// A successful parse must round-trip through String.
		again, err := ParseTerm(tm.String())
		if err != nil {
			t.Fatalf("ParseTerm(%q) ok but reparse of %q failed: %v", src, tm.String(), err)
		}
		if again.String() != tm.String() {
			t.Fatalf("round-trip drift: %q -> %q", tm.String(), again.String())
		}
	})
}

func FuzzParseSignature(f *testing.F) {
	for _, seed := range []string{
		"in: L(W,H); out: L(W/K,H/K); where K=factor",
		"out: yuv420(W,H); where W=width, H=height",
		"in: F; out: F",
		"a: F; b: G; out: F",
		"in: F; where",
		"in:", ";", "where K=",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sig, err := ParseSignature(src)
		if err != nil {
			return
		}
		for _, p := range sig.Ports {
			_ = p.Term.String()
			_ = p.Term.Ground()
		}
	})
}
