// Package format implements typed stream formats for XSPCL: the term
// language describing what flows through a stream (plane layout /
// colorspace, width, height, chunking), parametric component interface
// signatures over those terms, and a constraint solver that reconciles
// them across a whole network by unification with arithmetic
// propagation — the Joule/KPN interface-reconciliation model
// (Zaichenkov et al., PAPERS.md; SNIPPETS.md §3) adapted to XSPCL's
// stream graphs.
//
// # Term grammar
//
// A format term names a layout and up to three integer dimensions
// (width, height, chunk rows):
//
//	term   := VAR                         whole-format variable ("F")
//	        | layout                      layout only ("packet")
//	        | layout '(' expr ',' expr [',' expr] ')'
//	layout := ATOM | VAR                  "yuv420" or "L"
//	expr   := prim { ('*'|'/') prim }     left-associative
//	prim   := INT | VAR
//
// Identifiers follow the Prolog case convention: an uppercase first
// letter makes a variable ("F", "W", "K"), a lowercase one an atom
// ("yuv420", "gray", "packet"). A whole-format variable stands for all
// four slots at once, so "in: F; out: F" is full format equality.
//
// The '/' operator carries the library's downscale-fit semantics: the
// constraint A/K = C is satisfied by any C with
// floor(A/K)-1 <= C <= floor(A/K) — the one-pixel slack an even-aligned
// box downscaler needs (720/16 legitimately produces 44 rows, not 45).
// When the solver must *produce* a value through '/', it binds the
// canonical evenDown(floor(A/K)).
//
// # Signature grammar
//
// A component class signature relates its ports' formats:
//
//	sig      := portspec { ';' portspec } [ ';' 'where' bind { ',' bind } ]
//	portspec := PORT ':' term
//	bind     := VAR '=' PARAM
//
// Variables scope over the whole signature and are instantiated fresh
// per component instance. A where-bind ties a signature variable to an
// initialization parameter: when the parameter is supplied it grounds
// the variable, and when it is omitted but the network grounds the
// variable, the solved value is handed back so the runtime can
// specialise the generic component (hinch.NewApp injects it into the
// InitContext). Example:
//
//	in: L(W,H); out: L(W/K,H/K); where K=factor
package format

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates expression nodes.
type Kind int

// Expression node kinds.
const (
	Atom   Kind = iota // lowercase identifier: a layout name
	Int                // integer literal
	Var                // uppercase identifier: a signature/term variable
	OpExpr             // binary arithmetic: '*' or '/'
)

// Expr is one slot expression of a format term.
type Expr struct {
	Kind Kind
	Name string // Atom and Var
	N    int    // Int
	Op   byte   // OpExpr: '*' or '/'
	L, R *Expr  // OpExpr operands
}

// String renders the expression in the term grammar.
func (e *Expr) String() string {
	switch e.Kind {
	case Atom, Var:
		return e.Name
	case Int:
		return strconv.Itoa(e.N)
	case OpExpr:
		return e.L.String() + string(e.Op) + e.R.String()
	}
	return "?"
}

// Ground reports whether the expression contains no variables.
func (e *Expr) Ground() bool {
	switch e.Kind {
	case Atom, Int:
		return true
	case OpExpr:
		return e.L.Ground() && e.R.Ground()
	}
	return false
}

// Slot indices of a format term.
const (
	SlotLayout = 0
	SlotW      = 1
	SlotH      = 2
	SlotChunk  = 3
	NSlots     = 4
)

// SlotNames names the slots for diagnostics.
var SlotNames = [NSlots]string{"layout", "width", "height", "chunk"}

// Term is one format term: either a whole-format variable or a set of
// per-slot expressions (nil slots are unconstrained).
type Term struct {
	Var   string // non-empty: the whole term is one variable
	Slots [NSlots]*Expr
}

// String renders the term in the term grammar.
func (t *Term) String() string {
	if t.Var != "" {
		return t.Var
	}
	var b strings.Builder
	if t.Slots[SlotLayout] != nil {
		b.WriteString(t.Slots[SlotLayout].String())
	}
	if t.Slots[SlotW] != nil {
		b.WriteByte('(')
		b.WriteString(t.Slots[SlotW].String())
		b.WriteByte(',')
		b.WriteString(t.Slots[SlotH].String())
		if t.Slots[SlotChunk] != nil {
			b.WriteByte(',')
			b.WriteString(t.Slots[SlotChunk].String())
		}
		b.WriteByte(')')
	}
	return b.String()
}

// Ground reports whether the term contains no variables.
func (t *Term) Ground() bool {
	if t.Var != "" {
		return false
	}
	for _, s := range t.Slots {
		if s != nil && !s.Ground() {
			return false
		}
	}
	return true
}

// PortFormat is one port's format term in a signature.
type PortFormat struct {
	Port string
	Term *Term
}

// Bind ties a signature variable to an initialization parameter.
type Bind struct {
	Var   string
	Param string
}

// Signature is a parsed component interface signature.
type Signature struct {
	Ports []PortFormat
	Binds []Bind
	Src   string // original text, for diagnostics
}

// Port returns the format term of the named port, or nil.
func (s *Signature) Port(name string) *Term {
	for _, p := range s.Ports {
		if p.Port == name {
			return p.Term
		}
	}
	return nil
}

// lexer is a minimal hand scanner over the term/signature grammar.
type lexer struct {
	src string
	pos int
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && (l.src[l.pos] == ' ' || l.src[l.pos] == '\t' || l.src[l.pos] == '\n') {
		l.pos++
	}
}

// peek returns the next non-space byte without consuming it (0 at EOF).
func (l *lexer) peek() byte {
	l.skipSpace()
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

// take consumes the next byte if it equals c.
func (l *lexer) take(c byte) bool {
	if l.peek() == c {
		l.pos++
		return true
	}
	return false
}

func isAlpha(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isAlnum(c byte) bool { return isAlpha(c) || c >= '0' && c <= '9' }

// ident consumes an identifier, or returns "".
func (l *lexer) ident() string {
	l.skipSpace()
	start := l.pos
	if l.pos >= len(l.src) || !isAlpha(l.src[l.pos]) {
		return ""
	}
	for l.pos < len(l.src) && isAlnum(l.src[l.pos]) {
		l.pos++
	}
	return l.src[start:l.pos]
}

// number consumes an integer literal, or returns -1.
func (l *lexer) number() int {
	l.skipSpace()
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
		l.pos++
	}
	if l.pos == start {
		return -1
	}
	n, err := strconv.Atoi(l.src[start:l.pos])
	if err != nil || n < 0 {
		return -1
	}
	return n
}

func isVarName(s string) bool { return s != "" && s[0] >= 'A' && s[0] <= 'Z' }

// prim parses INT | VAR.
func (l *lexer) prim() (*Expr, error) {
	if c := l.peek(); c >= '0' && c <= '9' {
		n := l.number()
		if n < 0 {
			return nil, fmt.Errorf("format: bad integer at %q", l.src[l.pos:])
		}
		return &Expr{Kind: Int, N: n}, nil
	}
	id := l.ident()
	if id == "" {
		return nil, fmt.Errorf("format: expected integer or variable at %q", l.src[l.pos:])
	}
	if !isVarName(id) {
		return nil, fmt.Errorf("format: atom %q in numeric position (dimensions take integers and variables)", id)
	}
	return &Expr{Kind: Var, Name: id}, nil
}

// expr parses prim { ('*'|'/') prim }, left-associative.
func (l *lexer) expr() (*Expr, error) {
	e, err := l.prim()
	if err != nil {
		return nil, err
	}
	for {
		c := l.peek()
		if c != '*' && c != '/' {
			return e, nil
		}
		l.pos++
		r, err := l.prim()
		if err != nil {
			return nil, err
		}
		e = &Expr{Kind: OpExpr, Op: c, L: e, R: r}
	}
}

// term parses one format term.
func (l *lexer) term() (*Term, error) {
	id := l.ident()
	if id == "" {
		return nil, fmt.Errorf("format: expected a format term at %q", l.src[l.pos:])
	}
	t := &Term{}
	if !l.take('(') {
		// Bare identifier: whole-format variable or layout-only atom.
		if isVarName(id) {
			t.Var = id
		} else {
			t.Slots[SlotLayout] = &Expr{Kind: Atom, Name: id}
		}
		return t, nil
	}
	if isVarName(id) {
		t.Slots[SlotLayout] = &Expr{Kind: Var, Name: id}
	} else {
		t.Slots[SlotLayout] = &Expr{Kind: Atom, Name: id}
	}
	w, err := l.expr()
	if err != nil {
		return nil, err
	}
	if !l.take(',') {
		return nil, fmt.Errorf("format: %s(...) needs width and height", id)
	}
	h, err := l.expr()
	if err != nil {
		return nil, err
	}
	t.Slots[SlotW], t.Slots[SlotH] = w, h
	if l.take(',') {
		c, err := l.expr()
		if err != nil {
			return nil, err
		}
		t.Slots[SlotChunk] = c
	}
	if !l.take(')') {
		return nil, fmt.Errorf("format: unterminated %s(", id)
	}
	return t, nil
}

// ParseTerm parses one format term, e.g. "yuv420(720,576)", "packet",
// "L(W,H/2)" or "F".
func ParseTerm(src string) (*Term, error) {
	l := &lexer{src: src}
	t, err := l.term()
	if err != nil {
		return nil, err
	}
	if l.peek() != 0 {
		return nil, fmt.Errorf("format: trailing input %q after term", src[l.pos:])
	}
	return t, nil
}

// ParseSignature parses a component interface signature, e.g.
// "in: L(W,H); out: L(W/K,H/K); where K=factor".
func ParseSignature(src string) (*Signature, error) {
	sig := &Signature{Src: src}
	l := &lexer{src: src}
	seenPort := map[string]bool{}
	for {
		save := l.pos
		id := l.ident()
		if id == "" {
			return nil, fmt.Errorf("format: expected a port name at %q", src[l.pos:])
		}
		if id == "where" {
			l.pos = save
			break
		}
		if isVarName(id) {
			return nil, fmt.Errorf("format: port name %q must be lowercase", id)
		}
		if !l.take(':') {
			return nil, fmt.Errorf("format: port %q needs ': term'", id)
		}
		t, err := l.term()
		if err != nil {
			return nil, err
		}
		if seenPort[id] {
			return nil, fmt.Errorf("format: port %q given twice in signature", id)
		}
		seenPort[id] = true
		sig.Ports = append(sig.Ports, PortFormat{Port: id, Term: t})
		if !l.take(';') {
			break
		}
		if l.peek() == 0 {
			return nil, fmt.Errorf("format: trailing ';' in signature")
		}
	}
	if id := l.ident(); id == "where" {
		seenBind := map[string]bool{}
		for {
			v := l.ident()
			if !isVarName(v) {
				return nil, fmt.Errorf("format: where-bind needs an uppercase variable, got %q", v)
			}
			if !l.take('=') {
				return nil, fmt.Errorf("format: where-bind %s needs '=param'", v)
			}
			p := l.ident()
			if p == "" || isVarName(p) {
				return nil, fmt.Errorf("format: where-bind %s needs a lowercase parameter name, got %q", v, p)
			}
			if seenBind[v] {
				return nil, fmt.Errorf("format: variable %q bound twice in where clause", v)
			}
			seenBind[v] = true
			sig.Binds = append(sig.Binds, Bind{Var: v, Param: p})
			if !l.take(',') {
				break
			}
		}
	} else if id != "" {
		return nil, fmt.Errorf("format: unexpected %q in signature", id)
	}
	if l.peek() != 0 {
		return nil, fmt.Errorf("format: trailing input %q after signature", src[l.pos:])
	}
	if len(sig.Ports) == 0 {
		return nil, fmt.Errorf("format: signature declares no ports")
	}
	return sig, nil
}
