package xspcl_test

// The benchmark harness regenerating the paper's evaluation. One
// testing.B benchmark exists per figure:
//
//	BenchmarkFig8SequentialOverhead — Figure 8 (XSPCL vs hand-written
//	    sequential, per application variant)
//	BenchmarkFig9Speedup            — Figure 9 (speedup on 1..9 nodes)
//	BenchmarkFig10Reconfiguration   — Figure 10 (reconfiguration overhead)
//
// Each benchmark runs the corresponding simulated experiment and
// reports the figure's headline quantities as custom metrics (overhead
// percent, speedup, Mcycles), so `go test -bench . -benchmem` prints
// the paper's numbers alongside the harness cost. Scaled-down
// geometries keep individual bench iterations manageable; the full
// paper-scale sweep lives in cmd/experiments.
//
// Ablation benchmarks probe the design choices DESIGN.md calls out:
// pipeline depth, slice count, crossdep vs a full barrier, and stream
// FIFO capacity.

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"xspcl/internal/apps"
	"xspcl/internal/components"
	"xspcl/internal/graph"
	"xspcl/internal/hinch"
	"xspcl/internal/hinch/trace"
	"xspcl/internal/media"
	"xspcl/internal/mjpeg"
	"xspcl/internal/predict"
)

// benchPiP / benchJPiP / benchBlur are reduced-scale variants used by
// the per-iteration benchmarks (the sweeps in cmd/experiments use the
// full paper geometry).
func benchPiP(pips int) apps.PiPConfig {
	cfg := apps.DefaultPiP(pips)
	cfg.Frames = 24
	return cfg
}

func benchJPiP(pips int) apps.JPiPConfig {
	cfg := apps.DefaultJPiP(pips)
	cfg.Frames = 6
	return cfg
}

func benchBlur(taps int) apps.BlurConfig {
	cfg := apps.DefaultBlur(taps)
	cfg.Frames = 24
	return cfg
}

// BenchmarkFig8SequentialOverhead reproduces Figure 8: one sub-bench
// per application variant, reporting sequential and XSPCL Mcycles and
// the overhead percentage.
func BenchmarkFig8SequentialOverhead(b *testing.B) {
	variants := []*apps.Variant{
		apps.NewPiPVariant("PiP-1", benchPiP(1)),
		apps.NewPiPVariant("PiP-2", benchPiP(2)),
		apps.NewJPiPVariant("JPiP-1", benchJPiP(1)),
		apps.NewJPiPVariant("JPiP-2", benchJPiP(2)),
		apps.NewBlurVariant("Blur-3x3", benchBlur(3)),
		apps.NewBlurVariant("Blur-5x5", benchBlur(5)),
	}
	for _, v := range variants {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			var row apps.Fig8Row
			for i := 0; i < b.N; i++ {
				rows, err := apps.RunFig8([]*apps.Variant{v}, apps.RunOptions{Workless: true})
				if err != nil {
					b.Fatal(err)
				}
				row = rows[0]
			}
			b.ReportMetric(row.OverheadPct, "overhead%")
			b.ReportMetric(float64(row.SeqCycles)/1e6, "seqMcycles")
			b.ReportMetric(float64(row.XSPCLCycles)/1e6, "xspclMcycles")
		})
	}
}

// BenchmarkFig9Speedup reproduces Figure 9 for each application at the
// tile's maximum node count, reporting the speedup.
func BenchmarkFig9Speedup(b *testing.B) {
	variants := []*apps.Variant{
		apps.NewPiPVariant("PiP-1", benchPiP(1)),
		apps.NewJPiPVariant("JPiP-1", benchJPiP(1)),
		apps.NewBlurVariant("Blur-5x5", benchBlur(5)),
	}
	for _, v := range variants {
		v := v
		b.Run(v.Name, func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				series, err := apps.RunFig9([]*apps.Variant{v}, 9, apps.RunOptions{Workless: true})
				if err != nil {
					b.Fatal(err)
				}
				speedup = series[0].Points[8].Speedup
			}
			b.ReportMetric(speedup, "speedup@9")
		})
	}
}

// BenchmarkFig10Reconfiguration reproduces Figure 10 at 9 nodes for
// each reconfigurable variant, reporting the overhead percentage.
func BenchmarkFig10Reconfiguration(b *testing.B) {
	type rv struct {
		name       string
		reconfig   *apps.Variant
		staticPair []*apps.Variant
	}
	mk := func() []rv {
		// Scale the toggle period with the reduced frame counts so each
		// run still reconfigures at the paper's toggles-per-run rate.
		pipR := benchPiP(1)
		pipR.Reconfig = true
		pipR.Every = 8
		jpR := benchJPiP(1)
		jpR.Reconfig = true
		jpR.Every = 3
		blR := benchBlur(3)
		blR.Reconfig = true
		blR.Every = 8
		return []rv{
			{"PiP-12", apps.NewPiPVariant("PiP-12", pipR),
				[]*apps.Variant{apps.NewPiPVariant("PiP-1", benchPiP(1)), apps.NewPiPVariant("PiP-2", benchPiP(2))}},
			{"JPiP-12", apps.NewJPiPVariant("JPiP-12", jpR),
				[]*apps.Variant{apps.NewJPiPVariant("JPiP-1", benchJPiP(1)), apps.NewJPiPVariant("JPiP-2", benchJPiP(2))}},
			{"Blur-35", apps.NewBlurVariant("Blur-35", blR),
				[]*apps.Variant{apps.NewBlurVariant("Blur-3x3", benchBlur(3)), apps.NewBlurVariant("Blur-5x5", benchBlur(5))}},
		}
	}
	for _, c := range mk() {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var overhead float64
			var reconfigs int
			for i := 0; i < b.N; i++ {
				series, err := apps.RunFig10With(c.reconfig, c.staticPair, 9, apps.RunOptions{Workless: true})
				if err != nil {
					b.Fatal(err)
				}
				last := series.Points[len(series.Points)-1]
				overhead = last.OverheadPct
				reconfigs = last.Reconfigs
			}
			b.ReportMetric(overhead, "overhead%@9")
			b.ReportMetric(float64(reconfigs), "reconfigs")
		})
	}
}

// BenchmarkPipelineDepth ablates the paper's "five iterations are
// simultaneously scheduled": Blur at 9 cores across pipeline depths.
func BenchmarkPipelineDepth(b *testing.B) {
	for _, depth := range []int{1, 2, 5} {
		depth := depth
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				v := apps.NewBlurVariant("blur", benchBlur(5))
				cfg := apps.SimConfig(9, apps.RunOptions{Workless: true, Pipeline: depth})
				rep, _, err := v.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = rep.Cycles
			}
			b.ReportMetric(float64(cycles)/1e6, "Mcycles")
		})
	}
}

// BenchmarkSliceCount ablates the data-parallel slice count of the PiP
// downscaler/blender around the paper's choice of 8.
func BenchmarkSliceCount(b *testing.B) {
	for _, slices := range []int{2, 8, 16} {
		slices := slices
		b.Run(fmt.Sprintf("slices%d", slices), func(b *testing.B) {
			cfg := benchPiP(1)
			cfg.Slices = slices
			var cycles int64
			for i := 0; i < b.N; i++ {
				v := apps.NewPiPVariant("pip", cfg)
				rep, _, err := v.Run(apps.SimConfig(8, apps.RunOptions{Workless: true}))
				if err != nil {
					b.Fatal(err)
				}
				cycles = rep.Cycles
			}
			b.ReportMetric(float64(cycles)/1e6, "Mcycles")
		})
	}
}

// BenchmarkCrossdepVsBarrier ablates the Blur application's non-SP
// cross dependencies against an SP-conforming full barrier between the
// two phases (paper §3.3: crossdep exists precisely to avoid that
// synchronisation point).
func BenchmarkCrossdepVsBarrier(b *testing.B) {
	build := func(crossdep bool) *graph.Program {
		const w, h, slices = 360, 288, 9
		gb := graph.NewBuilder("blur-ablate")
		gb.FrameStream("v", w, h)
		gb.FrameStream("t", w, h)
		gb.FrameStream("o", w, h)
		hNode := gb.Component("h", "blurh", graph.Ports{"in": "v", "out": "t"}, graph.Params{"taps": "5"})
		vNode := gb.Component("vv", "blurv", graph.Ports{"in": "t", "out": "o"}, graph.Params{"taps": "5"})
		var body *graph.Node
		if crossdep {
			body = gb.Parallel(graph.ShapeCrossdep, slices, hNode, vNode)
		} else {
			body = gb.Seq(
				gb.Parallel(graph.ShapeSlice, slices, hNode),
				gb.Parallel(graph.ShapeSlice, slices, vNode),
			)
		}
		gb.Body(
			gb.Component("src", "videosrc", graph.Ports{"out": "v"},
				graph.Params{"width": "360", "height": "288", "frames": "24"}),
			body,
			gb.Component("snk", "videosink", graph.Ports{"in": "o"}, nil),
		)
		return gb.MustProgram()
	}
	for _, crossdep := range []bool{true, false} {
		name := "barrier"
		if crossdep {
			name = "crossdep"
		}
		prog := build(crossdep)
		b.Run(name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				app, err := hinch.NewApp(prog, components.DefaultRegistry(), hinch.Config{
					Backend: hinch.BackendSim, Cores: 9, Workless: true,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err := app.Run(24)
				if err != nil {
					b.Fatal(err)
				}
				cycles = rep.Cycles
				prog = build(crossdep) // fresh program per app
			}
			b.ReportMetric(float64(cycles)/1e6, "Mcycles")
		})
	}
}

// BenchmarkStreamCapacity ablates the stream FIFO backpressure bound.
func BenchmarkStreamCapacity(b *testing.B) {
	for _, capacity := range []int{1, 3, 5} {
		capacity := capacity
		b.Run(fmt.Sprintf("cap%d", capacity), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				v := apps.NewPiPVariant("pip", benchPiP(1))
				cfg := apps.SimConfig(4, apps.RunOptions{Workless: true})
				cfg.StreamCapacity = capacity
				rep, _, err := v.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cycles = rep.Cycles
			}
			b.ReportMetric(float64(cycles)/1e6, "Mcycles")
		})
	}
}

// BenchmarkPrediction measures the analytic prediction tool itself and
// reports its 9-node speedup estimate for JPiP.
func BenchmarkPrediction(b *testing.B) {
	prog, err := apps.JPiP1().Program()
	if err != nil {
		b.Fatal(err)
	}
	var speedup float64
	for i := 0; i < b.N; i++ {
		p, err := predict.Predict(prog, nil, predict.NewDefaultModel(), 9, 5)
		if err != nil {
			b.Fatal(err)
		}
		speedup = p.PerNode[8].Speedup
	}
	b.ReportMetric(speedup, "predictedSpeedup@9")
}

// Micro-benchmarks of the substrates.

func BenchmarkIDCTBlock(b *testing.B) {
	var in, out [64]int32
	for i := range in {
		in[i] = int32(i * 3 % 255)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		mjpeg.IDCT8x8(&out, &in)
	}
}

func BenchmarkJPEGDecodeFrame(b *testing.B) {
	f := media.NewGenerator(320, 240, 1).Next()
	enc, err := mjpeg.Encode(f, 75)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.Bytes()))
	for i := 0; i < b.N; i++ {
		if _, err := mjpeg.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyntheticFrame(b *testing.B) {
	g := media.NewGenerator(720, 576, 1)
	f := media.NewFrame(720, 576)
	b.SetBytes(int64(f.Bytes()))
	for i := 0; i < b.N; i++ {
		g.Render(f, i)
	}
}

// schedThroughputProgram is the scheduler-stress graph shared by
// BenchmarkSchedulerThroughput and BenchmarkTraceOverhead: a wide
// sliced graph of trivial components, so job dispatch dominates.
func schedThroughputProgram() *graph.Program {
	gb := graph.NewBuilder("sched")
	gb.FrameStream("v", 64, 48)
	gb.Body(
		gb.Component("src", "videosrc", graph.Ports{"out": "v"},
			graph.Params{"width": "64", "height": "48", "frames": "64"}),
		gb.Parallel(graph.ShapeSlice, 16,
			gb.Component("c", "copyplane", graph.Ports{"in": "v", "out": "v2"}, nil),
		),
		gb.Component("snk", "videosink", graph.Ports{"in": "v2"}, nil),
	)
	gb.FrameStream("v2", 64, 48)
	return gb.MustProgram()
}

// BenchmarkSchedulerThroughput measures raw job dispatch on the real
// backend. The program and registry are built once (a deployment
// parses its graph once, then streams indefinitely) and App wiring
// happens with the timer stopped (StopTimer excludes both time and
// allocations), so the reported ns/op and allocs/op cover the Run path
// alone — the steady-state dispatch loop the zero-allocation work
// targets — and construction garbage doesn't trigger GC cycles that
// would bill background sweep time to the measured region.
func BenchmarkSchedulerThroughput(b *testing.B) {
	prog := schedThroughputProgram()
	reg := components.DefaultRegistry()
	// Pace the GC by hand: the pacer is disabled for the loop and the
	// wiring garbage is collected every few ops with the clock stopped.
	// Run's own steady state allocates so little (tens of allocations)
	// that no collection is ever needed inside a measured region, so
	// neither concurrent mark/sweep nor the post-GC thread settling
	// lands on the workers' cores mid-measurement.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	b.ReportAllocs()
	// Construction happens in chunks so the StopTimer/StartTimer pair —
	// each reads memstats, a stop-the-world — is paid once per chunk
	// instead of once per op; its restart cost otherwise bleeds into the
	// measured region and grows with GOMAXPROCS.
	const chunk = 16
	var apps [chunk]*hinch.App
	var jobs int64
	for i := 0; i < b.N; i += chunk {
		n := chunk
		if rem := b.N - i; rem < n {
			n = rem
		}
		b.StopTimer()
		for k := 0; k < n; k++ {
			app, err := hinch.NewApp(prog, reg, hinch.Config{
				Backend: hinch.BackendReal, Cores: 4, Workless: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			apps[k] = app
		}
		// Collect after construction, when the previous chunk's apps have
		// been overwritten and are dead — then yield the CPU briefly so
		// the cycle's background sweep (which runs on otherwise-idle Ps
		// and would steal host cores from the measured region at high
		// GOMAXPROCS) drains while the clock is stopped.
		runtime.GC()
		time.Sleep(200 * time.Microsecond)
		b.StartTimer()
		for k := 0; k < n; k++ {
			rep, err := apps[k].Run(64)
			if err != nil {
				b.Fatal(err)
			}
			jobs += rep.Jobs
		}
	}
	b.ReportMetric(float64(jobs)/float64(b.Elapsed().Seconds())/1e3, "kjobs/s")
}

// BenchmarkTraceOverhead measures what the flight recorder costs on the
// scheduler-bound workload above. The "nil" case is the production
// default (Config.Tracer unset: one predictable branch per boundary)
// and must match BenchmarkSchedulerThroughput. The "ring" case attaches
// the ring-buffer recorder; its cost is one monotonic clock read plus
// two ring stores per executed job (~45ns on the CI VM — see DESIGN.md
// §8), which this benchmark's empty ~0.5µs jobs are chosen to magnify.
// The ring recorder is reused across iterations (Begin resets the
// shards in place), mirroring how a long-lived deployment would hold
// one recorder.
func BenchmarkTraceOverhead(b *testing.B) {
	run := func(b *testing.B, tr hinch.Tracer) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			app, err := hinch.NewApp(schedThroughputProgram(), components.DefaultRegistry(), hinch.Config{
				Backend: hinch.BackendReal, Cores: 4, Workless: true, Tracer: tr,
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := app.Run(64); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil", func(b *testing.B) { run(b, nil) })
	b.Run("ring", func(b *testing.B) { run(b, trace.New(0)) })
}

// BenchmarkTelemetryOverhead measures what Config.Telemetry costs on
// the real backend's dispatch path: "off" is the production
// configuration (every record site is one nil check), "on" pays the
// live counters plus the 1-in-32 sampled service-time records, and
// "scraped" additionally hammers App.Snapshot from a second goroutine
// for the whole run — the /metrics-under-load case. The acceptance bar
// is an on/off ns-per-op gap inside a few percent with the dispatch
// path's zero marginal allocations preserved.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, telemetry, scraped bool) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			app, err := hinch.NewApp(schedThroughputProgram(), components.DefaultRegistry(), hinch.Config{
				Backend: hinch.BackendReal, Cores: 4, Workless: true, Telemetry: telemetry,
			})
			if err != nil {
				b.Fatal(err)
			}
			var stop chan struct{}
			if scraped {
				stop = make(chan struct{})
				go func() {
					for {
						select {
						case <-stop:
							return
						default:
							app.Snapshot()
						}
					}
				}()
			}
			_, err = app.Run(64)
			if scraped {
				close(stop)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, false, false) })
	b.Run("on", func(b *testing.B) { run(b, true, false) })
	b.Run("scraped", func(b *testing.B) { run(b, true, true) })
}

// BenchmarkEagerVsLazyCreation ablates the paper's §3.4 design choice
// of pre-creating option components as soon as the toggle event is
// detected ("reconfiguration time is reduced") against creating them
// inside the quiescent window.
func BenchmarkEagerVsLazyCreation(b *testing.B) {
	for _, lazy := range []bool{false, true} {
		name := "eager"
		if lazy {
			name = "lazy"
		}
		lazy := lazy
		b.Run(name, func(b *testing.B) {
			cfg := benchPiP(1)
			cfg.Reconfig = true
			cfg.Frames = 48
			var stall, cycles int64
			for i := 0; i < b.N; i++ {
				v := apps.NewPiPVariant("pip-12", cfg)
				rcfg := apps.SimConfig(8, apps.RunOptions{Workless: true})
				rcfg.LazyCreation = lazy
				rep, _, err := v.Run(rcfg)
				if err != nil {
					b.Fatal(err)
				}
				stall, cycles = rep.ReconfigStall, rep.Cycles
			}
			b.ReportMetric(float64(stall), "stallCycles")
			b.ReportMetric(float64(cycles)/1e6, "Mcycles")
		})
	}
}
